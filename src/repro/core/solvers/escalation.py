"""Escalation recovery: re-solve only the unhealthy systems, up a ladder.

The per-system health taxonomy (:mod:`repro.core.faults`) tells us *which*
systems of a batch broke down and *how*; this module acts on it.  The
:class:`EscalationSolver` first runs its primary solver over the full batch
— healthy systems therefore follow the exact same instruction stream as
the non-escalating path and finish **bit-identical** — then gathers the
unhealthy remainder into a compact sub-batch (the same ``take_batch``
gather :class:`~repro.core.compaction.BatchCompactor` uses) and re-solves
it with progressively stronger methods:

    BiCGSTAB  →  GMRES  →  fp64 iterative refinement  →  banded direct

Every rung starts its re-solves from a **zero guess** — a corrupted warm
start (NaN-poisoned Picard iterate) is one of the faults escalation exists
to recover from, so no rung ever inherits the previous rung's iterate.
Rung results are accepted only if they meet the escalation-level stopping
criterion on the rung's own residual norms (direct solvers report
``converged=True`` unconditionally, so their results are *validated*, not
trusted).  The report records which rung rescued each system, and its
:meth:`~EscalationReport.rung_billing` feeds the GPU model's
:func:`~repro.gpu.kernel.escalation_work` so recovery work is charged
through the same :class:`~repro.core.solvers.schedule.OpSchedule`
machinery as the primary solve.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..backend import host as np

from ...utils.validation import check_positive
from ..batch_dense import batch_norm2
from ..convert import to_format
from ..faults import HEALTH_DTYPE, SolverHealth, derive_health, health_counts
from ..stop import AbsoluteResidual, StoppingCriterion
from ..types import SolveResult
from .base import BatchedIterativeSolver
from .bicgstab import BatchBicgstab
from .cg import BatchCg
from .cgs import BatchCgs
from .direct_banded import BatchBandedLu, SingularBatchError
from .gmres import BatchGmres
from .refinement import RefinementSolver
from .richardson import BatchRichardson

__all__ = ["EscalationSolver", "EscalationReport", "RungAttempt"]

_ITERATIVE_RUNGS = {
    "bicgstab": BatchBicgstab,
    "cg": BatchCg,
    "cgs": BatchCgs,
    "gmres": BatchGmres,
    "richardson": BatchRichardson,
}

_DIRECT_NAMES = ("direct", "banded-lu")


@dataclass
class RungAttempt:
    """One rung's re-solve attempt over the then-unhealthy sub-batch."""

    rung: int
    solver: str
    attempted: int
    rescued: int
    total_iterations: int


@dataclass
class EscalationReport:
    """Everything one escalated solve recorded about its recovery work.

    ``rescued_by[k]`` is 0 when the primary solver converged system ``k``,
    the 1-based rung index that rescued it otherwise, and -1 when no rung
    recovered it.
    """

    ladder: tuple[str, ...]
    rescued_by: np.ndarray
    health_before: np.ndarray
    health_after: np.ndarray
    rung_attempts: list[RungAttempt] = field(default_factory=list)

    @property
    def num_rescued(self) -> int:
        """Systems recovered by any rung above the primary."""
        return int(np.count_nonzero(self.rescued_by > 0))

    @property
    def num_unrecovered(self) -> int:
        return int(np.count_nonzero(self.rescued_by < 0))

    def rung_billing(self) -> list[tuple[str, int, int]]:
        """``(solver_name, total_iterations, num_systems)`` per attempted
        rung — the input :func:`repro.gpu.kernel.escalation_work` expects."""
        return [
            (a.solver, a.total_iterations, a.attempted)
            for a in self.rung_attempts
            if a.attempted
        ]

    def summary(self) -> str:
        lines = [
            f"escalation over {self.rescued_by.size} systems: "
            f"{health_counts(self.health_before)} -> "
            f"{health_counts(self.health_after)}"
        ]
        for a in self.rung_attempts:
            lines.append(
                f"  rung {a.rung} ({a.solver}): rescued {a.rescued}/"
                f"{a.attempted} ({a.total_iterations} iterations)"
            )
        return "\n".join(lines)


class EscalationSolver:
    """Primary solve plus health-driven re-solve ladder.

    Parameters
    ----------
    ladder:
        Sequence of rungs.  Entry 0 is the primary solver run over the
        full batch; subsequent entries re-solve only the still-unhealthy
        systems.  Each entry is a solver *instance* (used as-is) or a name:
        ``"bicgstab"``, ``"cg"``, ``"cgs"``, ``"gmres"``, ``"richardson"``,
        ``"refinement"`` (pure-fp64 iterative refinement), or ``"direct"``
        (banded LU with a per-system singular fallback).
    preconditioner / max_iter / compact_threshold / health / gmres_restart:
        Configuration of the internally built iterative rungs.
    criterion:
        The escalation-level stopping criterion; each built rung gets its
        own deep copy, and *every* rung's results (including the direct
        rung's) are validated against it before being accepted.  Defaults
        to the paper's ``AbsoluteResidual(1e-10)``.
    """

    name = "escalation"

    def __init__(
        self,
        ladder: tuple = ("bicgstab", "gmres", "refinement", "direct"),
        *,
        preconditioner=None,
        criterion: StoppingCriterion | None = None,
        max_iter: int = 500,
        compact_threshold: float | None = 0.5,
        health=None,
        gmres_restart: int = 30,
    ) -> None:
        if not ladder:
            raise ValueError("escalation ladder must have at least one rung")
        self.criterion = criterion or AbsoluteResidual(1e-10)
        self.max_iter = int(check_positive(max_iter, "max_iter"))
        self._build_opts = dict(
            preconditioner=preconditioner,
            max_iter=self.max_iter,
            compact_threshold=compact_threshold,
            health=health,
        )
        self._gmres_restart = int(check_positive(gmres_restart, "gmres_restart"))
        self.rungs = tuple(self._build_rung(entry) for entry in ladder)
        self.ladder = tuple(
            getattr(r, "name", str(r)) for r in self.rungs
        )
        #: :class:`EscalationReport` of the most recent solve.
        self.last_report: EscalationReport | None = None

    def _build_rung(self, entry):
        if not isinstance(entry, str):
            return entry  # ready-made solver instance
        if entry in _DIRECT_NAMES:
            return BatchBandedLu()
        crit = copy.deepcopy(self.criterion)
        if entry == "refinement":
            return RefinementSolver(
                preconditioner=self._build_opts["preconditioner"],
                criterion=crit,
                precision="fp64",
                inner_max_iter=self.max_iter,
            )
        try:
            cls = _ITERATIVE_RUNGS[entry]
        except KeyError:
            raise ValueError(
                f"unknown escalation rung {entry!r}; choices: "
                f"{sorted(_ITERATIVE_RUNGS) + ['refinement', 'direct']}"
            ) from None
        kwargs = dict(self._build_opts, criterion=crit)
        if entry == "gmres":
            kwargs["restart"] = self._gmres_restart
        return cls(**kwargs)

    # -- public API -----------------------------------------------------------

    def solve(
        self,
        matrix,
        b: np.ndarray,
        x0: np.ndarray | None = None,
        *,
        workspace=None,
    ) -> SolveResult:
        """Solve the batch; escalate whatever the primary left unhealthy."""
        primary = self.rungs[0]
        if workspace is not None and isinstance(
            primary, (BatchedIterativeSolver, RefinementSolver)
        ):
            res = primary.solve(matrix, b, x0, workspace=workspace)
        else:
            res = primary.solve(matrix, b, x0)

        health_before = (
            res.health.copy()
            if res.health is not None
            else derive_health(res.converged, res.residual_norms)
        )
        health = health_before.copy()
        x = res.x.copy()
        iterations = res.iterations.copy()
        norms = res.residual_norms.copy()
        need = ~res.converged.copy()
        rescued_by = np.where(res.converged, 0, -1).astype(np.int16)
        attempts: list[RungAttempt] = []

        b = np.asarray(b)
        gatherable = matrix if hasattr(matrix, "take_batch") else to_format(matrix, "csr")

        for rung_idx, rung in enumerate(self.rungs[1:], start=1):
            if not np.any(need):
                break
            idx = np.flatnonzero(need)
            sub_matrix = gatherable.take_batch(idx)
            sub_b = np.ascontiguousarray(b[idx])
            rung_res = self._solve_rung(rung, sub_matrix, sub_b)
            ok = self._accept(rung_res, sub_b)
            gidx = idx[ok]
            if gidx.size:
                x[gidx] = rung_res.x[ok]
                norms[gidx] = rung_res.residual_norms[ok]
                health[gidx] = SolverHealth.CONVERGED
                rescued_by[gidx] = rung_idx
                need[gidx] = False
            # Attempted work is billed on every attempted system, rescued
            # or not — the GPU pays for the re-solve either way.
            iterations[idx] += rung_res.iterations
            attempts.append(
                RungAttempt(
                    rung=rung_idx,
                    solver=getattr(rung, "name", str(rung)),
                    attempted=int(idx.size),
                    rescued=int(gidx.size),
                    total_iterations=int(rung_res.iterations.sum()),
                )
            )

        converged = ~need
        self.last_report = EscalationReport(
            ladder=self.ladder,
            rescued_by=rescued_by,
            health_before=health_before,
            health_after=health.astype(HEALTH_DTYPE),
            rung_attempts=attempts,
        )
        return SolveResult(
            x=x,
            iterations=iterations,
            residual_norms=norms,
            converged=converged,
            solver=self.name,
            format=getattr(matrix, "format_name", "unknown"),
            health=health,
        )

    # -- rung execution -------------------------------------------------------

    def _solve_rung(self, rung, sub_matrix, sub_b: np.ndarray) -> SolveResult:
        """Run one rung from a zero guess; singular direct systems fall
        back to one-at-a-time solves so one singular system cannot veto
        the rest of the sub-batch."""
        try:
            with np.errstate(all="ignore"):
                return rung.solve(sub_matrix, sub_b)
        except SingularBatchError:
            return self._solve_one_by_one(rung, sub_matrix, sub_b)

    @staticmethod
    def _solve_one_by_one(rung, sub_matrix, sub_b: np.ndarray) -> SolveResult:
        nb, n = sub_b.shape
        x = np.zeros((nb, n), dtype=np.float64)
        iterations = np.zeros(nb, dtype=np.int64)
        norms = batch_norm2(sub_b)  # zero-guess residual for failed systems
        converged = np.zeros(nb, dtype=bool)
        for k in range(nb):
            one = np.array([k])
            try:
                with np.errstate(all="ignore"):
                    res_k = rung.solve(sub_matrix.take_batch(one), sub_b[one])
            except SingularBatchError:
                continue
            x[k] = res_k.x[0]
            iterations[k] = res_k.iterations[0]
            norms[k] = res_k.residual_norms[0]
            converged[k] = res_k.converged[0]
        return SolveResult(
            x=x,
            iterations=iterations,
            residual_norms=norms,
            converged=converged,
            solver=getattr(rung, "name", str(rung)),
            format=getattr(sub_matrix, "format_name", "unknown"),
        )

    def _accept(self, rung_res: SolveResult, sub_b: np.ndarray) -> np.ndarray:
        """Validate rung results against the escalation-level criterion."""
        crit = copy.deepcopy(self.criterion)
        bnorm = batch_norm2(sub_b)
        # Zero-guess semantics: the initial residual of a rung solve is b
        # itself, which is what relative criteria scale against.
        crit.initialize(bnorm, bnorm)
        norms = rung_res.residual_norms
        return rung_res.converged & np.isfinite(norms) & crit.check(norms)
