"""Batched tridiagonal direct solver — the related-work baseline.

Section III surveys the batched *tridiagonal* solvers that existed before
this work: NVIDIA's ``gtsv2StridedBatch`` (cyclic reduction) and
cuThomasBatch-style kernels where **one GPU thread solves one entire
system** with the Thomas algorithm, batch storage interleaved for
coalescing.  They are exact, robust — and specialised: they cannot exploit
early stopping, initial guesses, or general sparsity.

This module provides that baseline:

* :func:`thomas_solve` — the Thomas algorithm (no pivoting; requires the
  usual diagonal-dominance/SPD-style conditions), vectorised over the
  batch exactly like the thread-per-system GPU kernel (the sequential
  sweep is the per-thread loop; the batch axis is the SIMT axis);
* :class:`BatchTridiag` — a format-level container with the *interleaved*
  value layout the papers use (``dl/d/du`` arrays of shape ``(n, nb)``
  so consecutive threads read consecutive addresses);
* :class:`BatchThomas` — the solver with the common ``solve`` interface,
  accepting any batch matrix whose pattern is tridiagonal.
"""

from __future__ import annotations

from ..backend import host as np

from ...utils.banded import detect_bandwidths
from ..batch_dense import batch_norm2
from ..convert import to_format
from ..types import DTYPE, SolveResult

__all__ = ["BatchTridiag", "BatchThomas", "thomas_solve", "extract_tridiagonal"]


def extract_tridiagonal(matrix) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Extract ``(dl, d, du)`` bands from a batch matrix.

    Raises if the shared pattern has entries outside the three central
    diagonals.  Shapes: ``dl``/``du`` are ``(num_batch, n-1)``, ``d`` is
    ``(num_batch, n)``.
    """
    csr = to_format(matrix, "csr")
    bw = detect_bandwidths(csr)
    if bw.kl > 1 or bw.ku > 1:
        raise ValueError(
            f"matrix is not tridiagonal: bandwidths kl={bw.kl}, ku={bw.ku}"
        )
    n, nb = csr.num_rows, csr.num_batch
    d = np.zeros((nb, n), dtype=DTYPE)
    dl = np.zeros((nb, max(n - 1, 0)), dtype=DTYPE)
    du = np.zeros((nb, max(n - 1, 0)), dtype=DTYPE)

    rows = np.repeat(np.arange(n, dtype=np.int64), csr.nnz_per_row())
    cols = csr.col_idxs.astype(np.int64)
    off = cols - rows
    d[:, rows[off == 0]] = csr.values[:, off == 0]
    dl[:, rows[off == -1] - 1] = csr.values[:, off == -1]
    du[:, rows[off == 1]] = csr.values[:, off == 1]
    return dl, d, du


def thomas_solve(
    dl: np.ndarray, d: np.ndarray, du: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Thomas algorithm over a batch of tridiagonal systems.

    Parameters
    ----------
    dl, d, du:
        Sub-, main- and super-diagonals, shapes ``(nb, n-1)``, ``(nb, n)``,
        ``(nb, n-1)``.
    b:
        Right-hand sides ``(nb, n)``; not modified.

    Notes
    -----
    No pivoting (as in the GPU kernels it models): a zero pivot raises.
    The elimination loop runs over the system dimension; every statement
    inside is vectorised over the batch — the exact dual of the
    thread-per-system kernel where the batch is the SIMT axis.
    """
    d = np.asarray(d, dtype=DTYPE)
    nb, n = d.shape
    if dl.shape != (nb, n - 1) or du.shape != (nb, n - 1):
        raise ValueError(
            f"band shapes inconsistent: dl {dl.shape}, d {d.shape}, "
            f"du {du.shape}"
        )
    if b.shape != (nb, n):
        raise ValueError(f"b must have shape ({nb}, {n}), got {b.shape}")

    # Forward sweep: c'_i = du_i / (d_i - dl_{i-1} c'_{i-1}), likewise rhs.
    c_prime = np.zeros((nb, max(n - 1, 0)), dtype=DTYPE)
    r_prime = np.zeros((nb, n), dtype=DTYPE)

    denom = d[:, 0].copy()
    if np.any(denom == 0.0):
        raise np.linalg.LinAlgError("zero pivot at row 0 (Thomas, no pivoting)")
    if n > 1:
        c_prime[:, 0] = du[:, 0] / denom
    r_prime[:, 0] = b[:, 0] / denom
    for i in range(1, n):
        denom = d[:, i] - dl[:, i - 1] * c_prime[:, i - 1]
        if np.any(denom == 0.0):
            raise np.linalg.LinAlgError(
                f"zero pivot at row {i} (Thomas, no pivoting)"
            )
        if i < n - 1:
            c_prime[:, i] = du[:, i] / denom
        r_prime[:, i] = (b[:, i] - dl[:, i - 1] * r_prime[:, i - 1]) / denom

    # Back substitution.
    x = np.empty((nb, n), dtype=DTYPE)
    x[:, n - 1] = r_prime[:, n - 1]
    for i in range(n - 2, -1, -1):
        x[:, i] = r_prime[:, i] - c_prime[:, i] * x[:, i + 1]
    return x


class BatchTridiag:
    """Batch of tridiagonal matrices in the interleaved GPU layout.

    The three band arrays are stored transposed — shape ``(n, num_batch)``
    — so that "thread" ``k`` (batch index) reads consecutive addresses as
    the elimination walks the rows: the coalesced interleaved storage of
    cuThomasBatch / ``gtsv2StridedBatch``.
    """

    format_name = "tridiag"

    def __init__(self, dl: np.ndarray, d: np.ndarray, du: np.ndarray):
        d = np.ascontiguousarray(np.asarray(d, dtype=DTYPE).T)
        dl = np.ascontiguousarray(np.asarray(dl, dtype=DTYPE).T)
        du = np.ascontiguousarray(np.asarray(du, dtype=DTYPE).T)
        n, nb = d.shape
        if dl.shape != (max(n - 1, 0), nb) or du.shape != (max(n - 1, 0), nb):
            raise ValueError("band shapes inconsistent with the diagonal")
        self._dl, self._d, self._du = dl, d, du

    @classmethod
    def from_matrix(cls, matrix) -> "BatchTridiag":
        """Build from any batch matrix with a tridiagonal pattern."""
        return cls(*extract_tridiagonal(matrix))

    @property
    def num_batch(self) -> int:
        return self._d.shape[1]

    @property
    def num_rows(self) -> int:
        return self._d.shape[0]

    def bands(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Band arrays back in ``(num_batch, ...)`` orientation."""
        return self._dl.T.copy(), self._d.T.copy(), self._du.T.copy()

    def storage_bytes(self) -> int:
        """Value storage (no index metadata at all — the format's perk)."""
        return self._dl.nbytes + self._d.nbytes + self._du.nbytes

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched tridiagonal mat-vec."""
        nb, n = self.num_batch, self.num_rows
        if x.shape != (nb, n):
            raise ValueError(f"x must have shape ({nb}, {n}), got {x.shape}")
        if out is None:
            out = np.empty((nb, n), dtype=DTYPE)
        d, dl, du = self._d.T, self._dl.T, self._du.T
        out[...] = d * x
        if n > 1:
            out[:, 1:] += dl * x[:, :-1]
            out[:, :-1] += du * x[:, 1:]
        return out


class BatchThomas:
    """Batched Thomas direct solver with the common ``solve`` interface."""

    name = "thomas"

    def solve(self, matrix, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        """Solve exactly; ``x0`` is accepted and ignored (direct solver)."""
        tri = (
            matrix
            if isinstance(matrix, BatchTridiag)
            else BatchTridiag.from_matrix(matrix)
        )
        dl, d, du = tri.bands()
        b = np.asarray(b, dtype=DTYPE)
        x = thomas_solve(dl, d, du, b)
        nb = x.shape[0]
        return SolveResult(
            x=x,
            iterations=np.ones(nb, dtype=np.int64),
            residual_norms=batch_norm2(b - tri.apply(x)),
            converged=np.ones(nb, dtype=bool),
            solver=self.name,
            format="tridiag",
        )
