"""Batched BiCGSTAB (Algorithm 1 of the paper, van der Vorst 1992).

The solver runs all systems of the batch through the same instruction
stream — exactly like the fused CUDA kernel where one thread block owns one
system — while per-system ``active`` masks implement the paper's
system-individual convergence monitoring:

* converged systems stop contributing to any update (their step scalars are
  forced to zero by :func:`~repro.core.solvers.base.safe_divide`),
* each system's iteration count and final residual are logged individually,
* the loop exits as soon as *every* system has converged, so a batch of
  easy ion systems never pays for hard electron systems beyond the mask
  bookkeeping (the timing model charges per-system iterations, not the
  loop-trip count).

Two host-performance layers sit on top of the algorithm without touching
its numerics:

* all masked updates go through the fused, allocation-free helpers in
  :mod:`repro.core.blas` instead of the ``np.where`` copy idiom, and
* **active-batch compaction** (:mod:`repro.core.compaction`): once most of
  the batch has converged, the still-active systems are gathered into a
  compact sub-batch and iterated alone.  Each system's instruction stream
  is unchanged, so per-system iteration counts and residuals are
  bit-identical with compaction on or off.

The mid-iteration early exit on ``||s|| < tau`` (with the ``x += alpha *
p_hat`` half-step update) is implemented per system as in Algorithm 1.

Convergence flags raised by the *recursive* residual are confirmed against
the true residual ``b - A x`` before a system is frozen; systems whose
recursion has drifted (possible after a near-breakdown) are restarted from
the true residual instead — the standard stagnation recovery, which keeps
the returned residual norms trustworthy.
"""

from __future__ import annotations

import numpy as np

from ..batch_dense import batch_dot, batch_norm2
from ..blas import fused_update, masked_assign, masked_axpy, masked_fill
from ..spmv import residual
from .base import BatchedIterativeSolver, safe_divide

__all__ = ["BatchBicgstab"]


class BatchBicgstab(BatchedIterativeSolver):
    """Batched preconditioned BiCGSTAB with per-system termination."""

    name = "bicgstab"

    def _iterate(self, matrix, b, x, precond, ws):
        r = ws.vector("r")
        r_hat = ws.vector("r_hat")
        p = ws.vector("p", zero=True)
        p_hat = ws.vector("p_hat")
        v = ws.vector("v", zero=True)
        s = ws.vector("s")
        s_hat = ws.vector("s_hat")
        t = ws.vector("t")
        true_r = ws.vector("true_r")
        work = ws.vector("work")

        res_norms, converged = self._init_monitor(matrix, b, x, r)
        r_hat[...] = r

        rho_old = ws.scalar("rho_old", fill=1.0)
        alpha = ws.scalar("alpha", fill=1.0)
        omega = ws.scalar("omega", fill=1.0)

        active = ~converged
        # `converged` and `final_norms` stay full-size; under compaction the
        # compactor scatters local results into them by global index.
        final_norms = res_norms.copy()
        comp = self._compactor(matrix, precond)
        x_full = x

        def verify_and_freeze(candidates, it):
            """Confirm candidate convergences against the true residual.

            Confirmed systems are logged and frozen.  Systems whose
            recursive residual drifted are *restarted*: their Krylov state
            is rebuilt from the true residual and they keep iterating.
            Returns ``(confirmed, restarted)`` masks.
            """
            residual(matrix, x, b, out=true_r)
            true_norms = batch_norm2(true_r)
            confirmed = candidates & comp.criterion.check(true_norms)
            if np.any(confirmed):
                comp.update_norms(final_norms, true_norms, confirmed)
                comp.log_converged(self.logger, it, true_norms, confirmed)
            restarted = candidates & ~confirmed
            if np.any(restarted):
                masked_assign(r, true_r, restarted)
                masked_assign(r_hat, true_r, restarted)
                masked_fill(p, 0.0, restarted)
                masked_fill(v, 0.0, restarted)
                masked_fill(rho_old, 1.0, restarted)
                comp.update_norms(final_norms, true_norms, restarted)
            return confirmed, restarted

        for it in range(self.max_iter):
            if not np.any(active):
                break

            if comp.should_compact(active):
                packed = comp.compact(
                    active, matrix, b, x_full, x, precond,
                    vectors=(r, r_hat, p, p_hat, v, s, s_hat, t, true_r, work),
                    scalars=(rho_old, alpha, omega),
                )
                if packed is not None:
                    (matrix, b, x, precond, active,
                     (r, r_hat, p, p_hat, v, s, s_hat, t, true_r, work),
                     (rho_old, alpha, omega)) = packed

            # `cont` marks systems executing the rest of THIS iteration;
            # systems restarted mid-iteration sit the remainder out.
            cont = active.copy()

            # rho = r_hat . r ; beta = (rho / rho_old) * (alpha / omega)
            rho = batch_dot(r_hat, r)
            beta = safe_divide(rho, rho_old, cont) * safe_divide(alpha, omega, cont)

            # p = r + beta * (p - omega * v)   (restart-safe: beta = 0
            # reduces this to the steepest-descent direction p = r)
            fused_update(p, r, beta, omega, v, work=work)

            precond.apply(p, out=p_hat)
            matrix.apply(p_hat, out=v)

            # alpha = rho / (r_hat . v)
            safe_divide(rho, batch_dot(r_hat, v), cont, out=alpha)

            # s = r - alpha * v
            np.multiply(v, alpha[:, None], out=s)
            np.subtract(r, s, out=s)

            s_norms = batch_norm2(s)
            # Early exit per system: x += alpha * p_hat, then freeze.
            s_conv = cont & comp.criterion.check(s_norms)
            if np.any(s_conv):
                masked_axpy(x, alpha, p_hat, mask=s_conv, work=work)
                confirmed, restarted = verify_and_freeze(s_conv, it)
                comp.mark_converged(converged, confirmed)
                active &= ~confirmed
                cont &= ~s_conv  # both confirmed and restarted sit out
                if not np.any(active):
                    break

            precond.apply(s, out=s_hat)
            matrix.apply(s_hat, out=t)

            # omega = (t . s) / (t . t)
            safe_divide(batch_dot(t, s), batch_dot(t, t), cont, out=omega)

            # x += alpha * p_hat + omega * s_hat   (zero steps when frozen
            # or restarted)
            masked_axpy(x, alpha, p_hat, mask=cont, work=work)
            masked_axpy(x, omega, s_hat, mask=cont, work=work)

            # r = s - omega * t   (only for continuing systems)
            np.multiply(t, omega[:, None], out=t)
            np.subtract(s, t, out=t)
            masked_assign(r, t, cont)

            masked_assign(rho_old, rho, cont)

            res_norms = batch_norm2(r)
            comp.update_norms(final_norms, res_norms, active)
            newly = cont & comp.criterion.check(res_norms)
            if np.any(newly):
                confirmed, _ = verify_and_freeze(newly, it)
                comp.mark_converged(converged, confirmed)
                active &= ~confirmed
            self.logger.log_history(final_norms)

        comp.finalize(x_full, x)
        self.logger.finalize(final_norms, ~converged, self.max_iter)
        return final_norms, converged
