"""Batched BiCGSTAB (Algorithm 1 of the paper, van der Vorst 1992).

The solver runs all systems of the batch through the same instruction
stream — exactly like the fused CUDA kernel where one thread block owns one
system — while per-system ``active`` masks implement the paper's
system-individual convergence monitoring:

* converged systems stop contributing to any update (their step scalars are
  forced to zero by :func:`~repro.core.solvers.base.safe_divide`),
* each system's iteration count and final residual are logged individually,
* the loop exits as soon as *every* system has converged, so a batch of
  easy ion systems never pays for hard electron systems beyond the mask
  bookkeeping (the timing model charges per-system iterations, not the
  loop-trip count).

Two host-performance layers sit on top of the algorithm without touching
its numerics:

* all masked updates go through the fused, allocation-free helpers in
  :mod:`repro.core.blas` instead of the ``np.where`` copy idiom, and
* **active-batch compaction** (:mod:`repro.core.compaction`): once most of
  the batch has converged, the still-active systems are gathered into a
  compact sub-batch and iterated alone.  Each system's instruction stream
  is unchanged, so per-system iteration counts and residuals are
  bit-identical with compaction on or off.

The mid-iteration early exit on ``||s|| < tau`` (with the ``x += alpha *
p_hat`` half-step update) is implemented per system as in Algorithm 1.

Convergence flags raised by the *recursive* residual are confirmed against
the true residual ``b - A x`` before a system is frozen; systems whose
recursion has drifted (possible after a near-breakdown) are restarted from
the true residual instead — the standard stagnation recovery, which keeps
the returned residual norms trustworthy.
"""

from __future__ import annotations

from ..backend import host as np
from ..batch_dense import batch_dot, batch_norm2
from ..blas import fused_dots, fused_update, masked_assign, masked_axpy, masked_fill
from ..faults import SolverHealth
from .base import STOP, BatchedIterativeSolver, IterationDriver, safe_divide

__all__ = ["BatchBicgstab"]


class BatchBicgstab(BatchedIterativeSolver):
    """Batched preconditioned BiCGSTAB with per-system termination."""

    name = "bicgstab"

    @staticmethod
    def _restart(st, true_r, restarted):
        """Rebuild the Krylov state of drifted systems from the true residual."""
        st.r = masked_assign(st.r, true_r, restarted)
        st.r_hat = masked_assign(st.r_hat, true_r, restarted)
        st.p = masked_fill(st.p, 0.0, restarted)
        st.v = masked_fill(st.v, 0.0, restarted)
        masked_fill(st.rho_old, 1.0, restarted)

    def _iterate(self, matrix, b, x, precond, ws):
        drv = IterationDriver(self, matrix, b, x, precond, ws, zero=("p", "v"))
        st = drv.state
        st.r_hat = st.bk.copyto(st.r_hat, st.r)

        st.register_scalar("rho_old", ws.scalar("rho_old", fill=1.0))
        st.register_scalar("alpha", ws.scalar("alpha", fill=1.0))
        st.register_scalar("omega", ws.scalar("omega", fill=1.0))

        def body(st, it):
            # `cont` marks systems executing the rest of THIS iteration;
            # systems restarted mid-iteration sit the remainder out.
            cont = st.active.copy()

            # rho = r_hat . r ; beta = (rho / rho_old) * (alpha / omega)
            rho = batch_dot(st.r_hat, st.r, dtype=st.acc_dtype)
            # rho = 0 (exact underflow or serendipitous r_hat-orthogonality)
            # or non-finite is the BiCG primary breakdown: the recurrence
            # cannot continue, so the system freezes with a health code
            # instead of silently no-op'ing to max_iter.
            broken = cont & ((rho == 0.0) | ~np.isfinite(rho))
            if np.any(broken):
                drv.flag_unhealthy(broken, SolverHealth.BREAKDOWN_RHO)
                cont &= ~broken
                if not np.any(st.active):
                    return STOP
            beta = safe_divide(rho, st.rho_old, cont) * safe_divide(
                st.alpha, st.omega, cont
            )

            # p = r + beta * (p - omega * v)   (restart-safe: beta = 0
            # reduces this to the steepest-descent direction p = r)
            st.p = fused_update(st.p, st.r, beta, st.omega, st.v, work=st.work)

            st.p_hat = st.precond.apply(st.p, out=st.p_hat)
            st.v = st.matrix.apply(st.p_hat, out=st.v)

            # alpha = rho / (r_hat . v); a zero or non-finite denominator
            # with rho != 0 is the second BiCG breakdown (r_hat ⟂ A p).
            alpha_den = batch_dot(st.r_hat, st.v, dtype=st.acc_dtype)
            broken = cont & ((alpha_den == 0.0) | ~np.isfinite(alpha_den))
            if np.any(broken):
                drv.flag_unhealthy(broken, SolverHealth.BREAKDOWN_RHO)
                cont &= ~broken
                if not np.any(st.active):
                    return STOP
            safe_divide(rho, alpha_den, cont, out=st.alpha)

            # s = r - alpha * v
            st.s = st.bk.multiply(st.v, st.alpha[:, None], out=st.s)
            st.s = st.bk.subtract(st.r, st.s, out=st.s)

            s_norms = batch_norm2(st.s, dtype=st.acc_dtype)
            # Early exit per system: x += alpha * p_hat, then freeze.
            s_conv = cont & drv.criterion.check(s_norms)
            if np.any(s_conv):
                st.x = masked_axpy(st.x, st.alpha, st.p_hat, mask=s_conv, work=st.work)
                drv.verify_and_freeze(it, s_conv, self._restart)
                cont &= ~s_conv  # both confirmed and restarted sit out
                if not np.any(st.active):
                    return STOP

            st.s_hat = st.precond.apply(st.s, out=st.s_hat)
            st.t = st.matrix.apply(st.s_hat, out=st.t)

            # omega = (t . s) / (t . t); a vanishing or non-finite
            # stabiliser means the next beta divides by omega = 0 — the
            # omega-family breakdown.  Both dots share the pass over t:
            # one fused reduction round, bit-identical to two batch_dots.
            ts, tt = fused_dots(
                (st.t, st.s), (st.t, st.t), dtype=st.acc_dtype
            )
            broken = cont & (
                (ts == 0.0) | (tt == 0.0) | ~np.isfinite(ts) | ~np.isfinite(tt)
            )
            if np.any(broken):
                drv.flag_unhealthy(broken, SolverHealth.BREAKDOWN_OMEGA)
                cont &= ~broken
                if not np.any(st.active):
                    return STOP
            safe_divide(ts, tt, cont, out=st.omega)

            # x += alpha * p_hat + omega * s_hat   (zero steps when frozen
            # or restarted)
            st.x = masked_axpy(st.x, st.alpha, st.p_hat, mask=cont, work=st.work)
            st.x = masked_axpy(st.x, st.omega, st.s_hat, mask=cont, work=st.work)

            # r = s - omega * t   (only for continuing systems)
            st.t = st.bk.multiply(st.t, st.omega[:, None], out=st.t)
            st.t = st.bk.subtract(st.s, st.t, out=st.t)
            st.r = masked_assign(st.r, st.t, cont)

            masked_assign(st.rho_old, rho, cont)

            res_norms = batch_norm2(st.r, dtype=st.acc_dtype)
            drv.update_norms(res_norms, st.active)
            newly = cont & drv.criterion.check(res_norms)
            if np.any(newly):
                drv.verify_and_freeze(it, newly, self._restart)
            drv.log_history()

        return drv.run(body)
