"""Batched BiCGSTAB (Algorithm 1 of the paper, van der Vorst 1992).

The solver runs all systems of the batch through the same instruction
stream — exactly like the fused CUDA kernel where one thread block owns one
system — while per-system ``active`` masks implement the paper's
system-individual convergence monitoring:

* converged systems stop contributing to any update (their step scalars are
  forced to zero by :func:`~repro.core.solvers.base.safe_divide`),
* each system's iteration count and final residual are logged individually,
* the loop exits as soon as *every* system has converged, so a batch of
  easy ion systems never pays for hard electron systems beyond the mask
  bookkeeping (the timing model charges per-system iterations, not the
  loop-trip count).

The mid-iteration early exit on ``||s|| < tau`` (with the ``x += alpha *
p_hat`` half-step update) is implemented per system as in Algorithm 1.

Convergence flags raised by the *recursive* residual are confirmed against
the true residual ``b - A x`` before a system is frozen; systems whose
recursion has drifted (possible after a near-breakdown) are restarted from
the true residual instead — the standard stagnation recovery, which keeps
the returned residual norms trustworthy.
"""

from __future__ import annotations

import numpy as np

from ..batch_dense import batch_dot, batch_norm2
from .base import BatchedIterativeSolver, safe_divide

__all__ = ["BatchBicgstab"]


class BatchBicgstab(BatchedIterativeSolver):
    """Batched preconditioned BiCGSTAB with per-system termination."""

    name = "bicgstab"

    def _iterate(self, matrix, b, x, precond, ws):
        r = ws.vector("r")
        r_hat = ws.vector("r_hat")
        p = ws.vector("p", zero=True)
        p_hat = ws.vector("p_hat")
        v = ws.vector("v", zero=True)
        s = ws.vector("s")
        s_hat = ws.vector("s_hat")
        t = ws.vector("t")

        res_norms, converged = self._init_monitor(matrix, b, x, r)
        r_hat[...] = r

        rho_old = ws.scalar("rho_old", fill=1.0)
        alpha = ws.scalar("alpha", fill=1.0)
        omega = ws.scalar("omega", fill=1.0)

        active = ~converged
        final_norms = res_norms.copy()

        def verify_and_freeze(candidates, it):
            """Confirm candidate convergences against the true residual.

            Confirmed systems are logged and frozen.  Systems whose
            recursive residual drifted are *restarted*: their Krylov state
            is rebuilt from the true residual and they keep iterating.
            Returns ``(confirmed, restarted)`` masks.
            """
            true_r = matrix.apply(x)
            np.subtract(b, true_r, out=true_r)
            true_norms = batch_norm2(true_r)
            confirmed = candidates & self.criterion.check(true_norms)
            if np.any(confirmed):
                final_norms[confirmed] = true_norms[confirmed]
                self.logger.log_iteration(it, final_norms, confirmed)
            restarted = candidates & ~confirmed
            if np.any(restarted):
                mask = restarted[:, None]
                r[...] = np.where(mask, true_r, r)
                r_hat[...] = np.where(mask, true_r, r_hat)
                p[...] = np.where(mask, 0.0, p)
                v[...] = np.where(mask, 0.0, v)
                rho_old[...] = np.where(restarted, 1.0, rho_old)
                final_norms[restarted] = true_norms[restarted]
            return confirmed, restarted

        for it in range(self.max_iter):
            if not np.any(active):
                break

            # `cont` marks systems executing the rest of THIS iteration;
            # systems restarted mid-iteration sit the remainder out.
            cont = active.copy()

            # rho = r_hat . r ; beta = (rho / rho_old) * (alpha / omega)
            rho = batch_dot(r_hat, r)
            beta = safe_divide(rho, rho_old, cont) * safe_divide(alpha, omega, cont)

            # p = r + beta * (p - omega * v)   (restart-safe: beta = 0
            # reduces this to the steepest-descent direction p = r)
            p -= omega[:, None] * v
            p *= beta[:, None]
            p += r

            precond.apply(p, out=p_hat)
            matrix.apply(p_hat, out=v)

            # alpha = rho / (r_hat . v)
            safe_divide(rho, batch_dot(r_hat, v), cont, out=alpha)

            # s = r - alpha * v
            np.multiply(v, alpha[:, None], out=s)
            np.subtract(r, s, out=s)

            s_norms = batch_norm2(s)
            # Early exit per system: x += alpha * p_hat, then freeze.
            s_conv = cont & self.criterion.check(s_norms)
            if np.any(s_conv):
                x += np.where(s_conv[:, None], alpha[:, None] * p_hat, 0.0)
                confirmed, restarted = verify_and_freeze(s_conv, it)
                converged |= confirmed
                active &= ~confirmed
                cont &= ~s_conv  # both confirmed and restarted sit out
                if not np.any(active):
                    break

            precond.apply(s, out=s_hat)
            matrix.apply(s_hat, out=t)

            # omega = (t . s) / (t . t)
            safe_divide(batch_dot(t, s), batch_dot(t, t), cont, out=omega)

            # x += alpha * p_hat + omega * s_hat   (zero steps when frozen
            # or restarted — their alpha/omega were forced to 0)
            alpha_eff = np.where(cont, alpha, 0.0)
            omega_eff = np.where(cont, omega, 0.0)
            x += alpha_eff[:, None] * p_hat
            x += omega_eff[:, None] * s_hat

            # r = s - omega * t   (only for continuing systems)
            np.multiply(t, omega[:, None], out=t)
            np.subtract(s, t, out=t)
            r[...] = np.where(cont[:, None], t, r)

            rho_old[...] = np.where(cont, rho, rho_old)

            res_norms = batch_norm2(r)
            final_norms = np.where(active, res_norms, final_norms)
            newly = cont & self.criterion.check(res_norms)
            if np.any(newly):
                confirmed, _ = verify_and_freeze(newly, it)
                converged |= confirmed
                active &= ~confirmed
            self.logger.log_history(final_norms)

        self.logger.finalize(final_norms, ~converged, self.max_iter)
        return final_norms, converged
