"""Batched banded QR direct solver — the cuSolver ``csrqrsvBatched`` stand-in.

cuSolver's batched sparse QR is the only vendor-provided batched sparse
solver for general matrices the paper could compare against.  Like it, this
solver computes an *exact* factorisation (Givens QR here, orthogonal and
unconditionally stable — no pivoting needed) and cannot exploit early
stopping or an initial guess, which is precisely why Fig. 6 shows it losing
to the iterative solver by 10–30x on well-conditioned batches.

The Givens sweep eliminates each subdiagonal entry by rotating adjacent row
pairs; rotations are vectorised over the batch, the ``(column, subdiagonal)``
loops are sequential.  R's bandwidth grows to ``kl + ku``, matching the
``fill = kl`` headroom of the working layout.
"""

from __future__ import annotations

from ..backend import host as np

from ...utils.banded import BatchBanded, csr_to_banded
from ..batch_dense import batch_norm2
from ..convert import to_format
from ..types import SolveResult

__all__ = ["BatchBandedQr", "banded_qr_solve"]


def banded_qr_solve(banded: BatchBanded, b: np.ndarray) -> np.ndarray:
    """Solve every banded system by Givens QR.

    The working array is overwritten with R; ``Q^T`` is applied to the
    right-hand sides on the fly.
    """
    if banded.fill < banded.kl:
        raise ValueError(
            f"QR fill-in needs fill >= kl, got fill={banded.fill} kl={banded.kl}"
        )
    W = banded.work
    nb, n, width = W.shape
    kl = banded.kl
    c = width - kl  # active row length: columns j .. j+c-1
    rhs = np.array(b, dtype=W.dtype, copy=True)
    if rhs.shape != (nb, n):
        raise ValueError(f"b must have shape ({nb}, {n}), got {rhs.shape}")

    for j in range(n):
        m = min(kl, n - 1 - j)
        # Rotate rows (i-1, i) upward so each rotation only involves rows
        # whose column-j entries are the two being combined.
        for d in range(m, 0, -1):
            i = j + d
            # Entry (i, j) sits at W[:, i, kl - d]; entry (i-1, j) at
            # W[:, i-1, kl - d + 1].  During the sweep, fill extends every
            # involved row to column j + kl + ku, so both slices span the
            # full c = kl + ku + 1 matrix columns j .. j+kl+ku.
            a = W[:, i - 1, kl - d + 1: kl - d + 1 + c]
            bb = W[:, i, kl - d: kl - d + c]
            f = W[:, i - 1, kl - d + 1]
            g = W[:, i, kl - d]
            denom = np.hypot(f, g)
            safe = denom != 0.0
            cs = np.ones_like(denom)
            sn = np.zeros_like(denom)
            np.divide(f, denom, out=cs, where=safe)
            np.divide(g, denom, out=sn, where=safe)

            new_a = cs[:, None] * a + sn[:, None] * bb
            new_b = -sn[:, None] * a + cs[:, None] * bb
            a[...] = new_a
            bb[...] = new_b
            bb[:, 0] = 0.0  # eliminated entry, exactly

            r0 = rhs[:, i - 1].copy()
            r1 = rhs[:, i]
            rhs[:, i - 1] = cs * r0 + sn * r1
            rhs[:, i] = -sn * r0 + cs * r1

    # Back substitution on R (bandwidth kl + ku, i.e. the full active row).
    x = np.zeros((nb, n + c), dtype=W.dtype)
    for j in range(n - 1, -1, -1):
        upper = W[:, j, kl + 1:]
        acc = rhs[:, j] - np.einsum("bt,bt->b", upper, x[:, j + 1: j + c])
        piv = W[:, j, kl]
        if np.any(piv == 0.0):
            bad = int(np.flatnonzero(piv == 0.0)[0])
            raise np.linalg.LinAlgError(
                f"singular R at column {j} in system {bad}"
            )
        x[:, j] = acc / piv
    return x[:, :n]


class BatchBandedQr:
    """Batched QR direct solver with the common ``solve`` interface."""

    name = "sparse-qr"

    def solve(self, matrix, b: np.ndarray, x0: np.ndarray | None = None) -> SolveResult:
        """Solve the batch by QR.  ``x0`` is accepted and ignored."""
        if isinstance(matrix, BatchBanded):
            banded = BatchBanded(
                matrix.work.copy(), matrix.kl, matrix.ku, matrix.fill
            )
            source = matrix
        else:
            source = to_format(matrix, "csr")
            banded = csr_to_banded(source)
        b = np.asarray(b, dtype=np.float64)
        x = banded_qr_solve(banded, b)
        nb = x.shape[0]
        return SolveResult(
            x=x,
            iterations=np.ones(nb, dtype=np.int64),
            residual_norms=batch_norm2(b - source.apply(x)),
            converged=np.ones(nb, dtype=bool),
            solver=self.name,
            format="banded",
        )
