"""Batched Conjugate Gradient Squared (CGS, Sonneveld 1989).

One more member of the "several preconditionable iterative solvers" family
the paper implements batched versions of.  CGS squares the BiCG
polynomial: two SpMVs per iteration like BiCGSTAB, often faster on easy
nonsymmetric problems but with rougher convergence (the squared residual
polynomial amplifies noise) — which is exactly why the paper's production
choice fell on BiCGSTAB.  Having both in the family lets the solver
comparison example demonstrate that choice.

Per-system monitoring, safe scalar guards and true-residual confirmation
follow the same scheme as :class:`~repro.core.solvers.bicgstab.BatchBicgstab`,
as do the fused allocation-free BLAS-1 updates and active-batch compaction.
"""

from __future__ import annotations

from ..backend import host as np
from ..batch_dense import batch_dot
from ..blas import fused_dots, masked_assign, masked_axpy
from ..faults import SolverHealth
from .base import STOP, BatchedIterativeSolver, IterationDriver, safe_divide

__all__ = ["BatchCgs"]


class BatchCgs(BatchedIterativeSolver):
    """Batched preconditioned CGS with per-system termination."""

    name = "cgs"

    @staticmethod
    def _restart(st, true_r, restarted):
        """Reseed drifted systems from the true residual (rho included)."""
        st.r = masked_assign(st.r, true_r, restarted)
        st.r_hat = masked_assign(st.r_hat, true_r, restarted)
        st.u = masked_assign(st.u, true_r, restarted)
        st.p = masked_assign(st.p, true_r, restarted)
        st.rho_old[restarted] = batch_dot(st.r_hat, st.r, dtype=st.acc_dtype)[restarted]

    def _iterate(self, matrix, b, x, precond, ws):
        drv = IterationDriver(self, matrix, b, x, precond, ws)
        st = drv.state
        st.r_hat = st.bk.copyto(st.r_hat, st.r)
        st.u = st.bk.copyto(st.u, st.r)
        st.p = st.bk.copyto(st.p, st.r)

        st.register_scalar("rho_old", batch_dot(st.r_hat, st.r, dtype=st.acc_dtype))

        def body(st, it):
            # v = A M^-1 p ; alpha = rho / (r_hat . v)
            st.work = st.precond.apply(st.p, out=st.work)
            st.v = st.matrix.apply(st.work, out=st.v)
            # BiCG-family breakdown guards: a zero/non-finite rho carried
            # from the previous trip, or a zero/non-finite alpha
            # denominator, ends the recurrence for that system.
            alpha_den = batch_dot(st.r_hat, st.v, dtype=st.acc_dtype)
            broken = st.active & (
                (st.rho_old == 0.0) | ~np.isfinite(st.rho_old)
                | (alpha_den == 0.0) | ~np.isfinite(alpha_den)
            )
            if np.any(broken):
                drv.flag_unhealthy(broken, SolverHealth.BREAKDOWN_RHO)
                if not np.any(st.active):
                    return STOP
            alpha = safe_divide(st.rho_old, alpha_den, st.active)

            # q = u - alpha v ; solution update direction u + q
            st.q = st.bk.multiply(st.v, alpha[:, None], out=st.q)
            st.q = st.bk.subtract(st.u, st.q, out=st.q)
            st.uq = st.bk.add(st.u, st.q, out=st.uq)

            st.uq_hat = st.precond.apply(st.uq, out=st.uq_hat)
            # alpha is already 0 for frozen systems (safe_divide).
            st.x = masked_axpy(st.x, alpha, st.uq_hat, work=st.scratch)

            # r -= alpha A M^-1 (u + q)
            st.work = st.matrix.apply(st.uq_hat, out=st.work)
            st.scratch = st.bk.multiply(st.work, alpha[:, None], out=st.scratch)
            st.r = st.bk.subtract(st.r, st.scratch, out=st.r)

            # ||r||^2 and the next rho share the pass over r: one fused
            # reduction round.  sqrt(r.r) is bit-identical to batch_norm2,
            # and rho computed before the verify step is safe — restarted
            # systems are excluded from every use of it below (their
            # rho_old is reseeded from the true residual by _restart).
            rr, rho = fused_dots(
                (st.r, st.r), (st.r_hat, st.r), dtype=st.acc_dtype
            )
            res_norms = np.sqrt(rr)
            drv.update_norms(res_norms, st.active)
            newly = st.active & drv.criterion.check(res_norms)
            if np.any(newly):
                # Confirm against the true residual (CGS recursions drift
                # even more readily than BiCGSTAB's); restarted systems
                # skip the direction update this iteration.
                _, restarted = drv.verify_and_freeze(it, newly, self._restart)
                active_now = st.active & ~restarted if np.any(restarted) else st.active
            else:
                active_now = st.active
            drv.log_history()
            if not np.any(st.active):
                return STOP

            # beta = rho / rho_old
            beta = safe_divide(rho, st.rho_old, active_now)

            # u = r + beta q ; p = u + beta (q + beta p)
            st.scratch = st.bk.multiply(st.q, beta[:, None], out=st.scratch)
            st.scratch = st.bk.add(st.scratch, st.r, out=st.scratch)
            st.u = masked_assign(st.u, st.scratch, active_now)
            st.scratch = st.bk.multiply(st.p, beta[:, None], out=st.scratch)
            st.scratch = st.bk.add(st.scratch, st.q, out=st.scratch)
            st.scratch = st.bk.multiply(st.scratch, beta[:, None], out=st.scratch)
            st.scratch = st.bk.add(st.scratch, st.u, out=st.scratch)
            st.p = masked_assign(st.p, st.scratch, active_now)
            masked_assign(st.rho_old, rho, active_now)

        return drv.run(body)
