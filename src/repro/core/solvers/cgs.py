"""Batched Conjugate Gradient Squared (CGS, Sonneveld 1989).

One more member of the "several preconditionable iterative solvers" family
the paper implements batched versions of.  CGS squares the BiCG
polynomial: two SpMVs per iteration like BiCGSTAB, often faster on easy
nonsymmetric problems but with rougher convergence (the squared residual
polynomial amplifies noise) — which is exactly why the paper's production
choice fell on BiCGSTAB.  Having both in the family lets the solver
comparison example demonstrate that choice.

Per-system monitoring, safe scalar guards and true-residual confirmation
follow the same scheme as :class:`~repro.core.solvers.bicgstab.BatchBicgstab`,
as do the fused allocation-free BLAS-1 updates and active-batch compaction.
"""

from __future__ import annotations

import numpy as np

from ..batch_dense import batch_dot, batch_norm2
from ..blas import masked_assign, masked_axpy
from ..spmv import residual
from .base import BatchedIterativeSolver, safe_divide

__all__ = ["BatchCgs"]


class BatchCgs(BatchedIterativeSolver):
    """Batched preconditioned CGS with per-system termination."""

    name = "cgs"

    def _iterate(self, matrix, b, x, precond, ws):
        r = ws.vector("r")
        r_hat = ws.vector("r_hat")
        p = ws.vector("p")
        u = ws.vector("u")
        q = ws.vector("q")
        v = ws.vector("v")
        uq = ws.vector("uq")
        uq_hat = ws.vector("uq_hat")
        work = ws.vector("cgs_work")
        scratch = ws.vector("scratch")
        true_r = ws.vector("true_r")

        res_norms, converged = self._init_monitor(matrix, b, x, r)
        r_hat[...] = r
        u[...] = r
        p[...] = r

        rho_old = batch_dot(r_hat, r)
        active = ~converged
        final_norms = res_norms.copy()
        comp = self._compactor(matrix, precond)
        x_full = x

        for it in range(self.max_iter):
            if not np.any(active):
                break

            if comp.should_compact(active):
                packed = comp.compact(
                    active, matrix, b, x_full, x, precond,
                    vectors=(r, r_hat, p, u, q, v, uq, uq_hat, work, scratch, true_r),
                    scalars=(rho_old,),
                )
                if packed is not None:
                    (matrix, b, x, precond, active,
                     (r, r_hat, p, u, q, v, uq, uq_hat, work, scratch, true_r),
                     (rho_old,)) = packed

            # v = A M^-1 p ; alpha = rho / (r_hat . v)
            precond.apply(p, out=work)
            matrix.apply(work, out=v)
            alpha = safe_divide(rho_old, batch_dot(r_hat, v), active)

            # q = u - alpha v ; solution update direction u + q
            np.multiply(v, alpha[:, None], out=q)
            np.subtract(u, q, out=q)
            np.add(u, q, out=uq)

            precond.apply(uq, out=uq_hat)
            # alpha is already 0 for frozen systems (safe_divide).
            masked_axpy(x, alpha, uq_hat, work=scratch)

            # r -= alpha A M^-1 (u + q)
            matrix.apply(uq_hat, out=work)
            np.multiply(work, alpha[:, None], out=scratch)
            np.subtract(r, scratch, out=r)

            res_norms = batch_norm2(r)
            comp.update_norms(final_norms, res_norms, active)
            newly = active & comp.criterion.check(res_norms)
            if np.any(newly):
                # Confirm against the true residual (CGS recursions drift
                # even more readily than BiCGSTAB's).
                residual(matrix, x, b, out=true_r)
                true_norms = batch_norm2(true_r)
                confirmed = newly & comp.criterion.check(true_norms)
                if np.any(confirmed):
                    comp.update_norms(final_norms, true_norms, confirmed)
                    comp.log_converged(self.logger, it, true_norms, confirmed)
                    comp.mark_converged(converged, confirmed)
                    active &= ~confirmed
                restarted = newly & ~confirmed
                if np.any(restarted):
                    masked_assign(r, true_r, restarted)
                    masked_assign(r_hat, true_r, restarted)
                    masked_assign(u, true_r, restarted)
                    masked_assign(p, true_r, restarted)
                    rho_old[restarted] = batch_dot(r_hat, r)[restarted]
                    comp.update_norms(final_norms, true_norms, restarted)
                    # Skip the direction update this iteration for them.
                    active_now = active & ~restarted
                else:
                    active_now = active
            else:
                active_now = active
            self.logger.log_history(final_norms)
            if not np.any(active):
                break

            # rho = r_hat . r ; beta = rho / rho_old
            rho = batch_dot(r_hat, r)
            beta = safe_divide(rho, rho_old, active_now)

            # u = r + beta q ; p = u + beta (q + beta p)
            np.multiply(q, beta[:, None], out=scratch)
            scratch += r
            masked_assign(u, scratch, active_now)
            np.multiply(p, beta[:, None], out=scratch)
            scratch += q
            np.multiply(scratch, beta[:, None], out=scratch)
            scratch += u
            masked_assign(p, scratch, active_now)
            masked_assign(rho_old, rho, active_now)

        comp.finalize(x_full, x)
        self.logger.finalize(final_norms, ~converged, self.max_iter)
        return final_norms, converged
