"""Batched Conjugate Gradient Squared (CGS, Sonneveld 1989).

One more member of the "several preconditionable iterative solvers" family
the paper implements batched versions of.  CGS squares the BiCG
polynomial: two SpMVs per iteration like BiCGSTAB, often faster on easy
nonsymmetric problems but with rougher convergence (the squared residual
polynomial amplifies noise) — which is exactly why the paper's production
choice fell on BiCGSTAB.  Having both in the family lets the solver
comparison example demonstrate that choice.

Per-system monitoring, safe scalar guards and true-residual confirmation
follow the same scheme as :class:`~repro.core.solvers.bicgstab.BatchBicgstab`.
"""

from __future__ import annotations

import numpy as np

from ..batch_dense import batch_dot, batch_norm2
from .base import BatchedIterativeSolver, safe_divide

__all__ = ["BatchCgs"]


class BatchCgs(BatchedIterativeSolver):
    """Batched preconditioned CGS with per-system termination."""

    name = "cgs"

    def _iterate(self, matrix, b, x, precond, ws):
        r = ws.vector("r")
        r_hat = ws.vector("r_hat")
        p = ws.vector("p")
        u = ws.vector("u")
        q = ws.vector("q")
        v = ws.vector("v")
        uq = ws.vector("uq")
        uq_hat = ws.vector("uq_hat")
        work = ws.vector("cgs_work")

        res_norms, converged = self._init_monitor(matrix, b, x, r)
        r_hat[...] = r
        u[...] = r
        p[...] = r

        rho_old = batch_dot(r_hat, r)
        active = ~converged
        final_norms = res_norms.copy()

        for it in range(self.max_iter):
            if not np.any(active):
                break

            # v = A M^-1 p ; alpha = rho / (r_hat . v)
            precond.apply(p, out=work)
            matrix.apply(work, out=v)
            alpha = safe_divide(rho_old, batch_dot(r_hat, v), active)

            # q = u - alpha v ; solution update direction u + q
            np.multiply(v, alpha[:, None], out=q)
            np.subtract(u, q, out=q)
            np.add(u, q, out=uq)

            precond.apply(uq, out=uq_hat)
            alpha_eff = np.where(active, alpha, 0.0)
            x += alpha_eff[:, None] * uq_hat

            # r -= alpha A M^-1 (u + q)
            matrix.apply(uq_hat, out=work)
            r -= alpha_eff[:, None] * work

            res_norms = batch_norm2(r)
            final_norms = np.where(active, res_norms, final_norms)
            newly = active & self.criterion.check(res_norms)
            if np.any(newly):
                # Confirm against the true residual (CGS recursions drift
                # even more readily than BiCGSTAB's).
                true_r = matrix.apply(x)
                np.subtract(b, true_r, out=true_r)
                true_norms = batch_norm2(true_r)
                confirmed = newly & self.criterion.check(true_norms)
                if np.any(confirmed):
                    final_norms[confirmed] = true_norms[confirmed]
                    self.logger.log_iteration(it, final_norms, confirmed)
                    converged |= confirmed
                    active &= ~confirmed
                restarted = newly & ~confirmed
                if np.any(restarted):
                    mask = restarted[:, None]
                    r[...] = np.where(mask, true_r, r)
                    r_hat[...] = np.where(mask, true_r, r_hat)
                    u[...] = np.where(mask, true_r, u)
                    p[...] = np.where(mask, true_r, p)
                    rho_old[restarted] = batch_dot(r_hat, r)[restarted]
                    final_norms[restarted] = true_norms[restarted]
                    # Skip the direction update this iteration for them.
                    active_now = active & ~restarted
                else:
                    active_now = active
            else:
                active_now = active
            self.logger.log_history(final_norms)
            if not np.any(active):
                break

            # rho = r_hat . r ; beta = rho / rho_old
            rho = batch_dot(r_hat, r)
            beta = safe_divide(rho, rho_old, active_now)

            # u = r + beta q ; p = u + beta (q + beta p)
            mask = active_now[:, None]
            u[...] = np.where(mask, r + beta[:, None] * q, u)
            work[...] = q + beta[:, None] * p
            p[...] = np.where(mask, u + beta[:, None] * work, p)
            rho_old = np.where(active_now, rho, rho_old)

        self.logger.finalize(final_norms, ~converged, self.max_iter)
        return final_norms, converged
