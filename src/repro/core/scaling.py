"""Batched matrix equilibration (diagonal scaling).

Iterative solvers on poorly scaled systems waste iterations; the standard
remedy is to equilibrate, solving ``(D_r A D_c) y = D_r b`` and recovering
``x = D_c y``.  For batched systems the scaling is per system — one
diagonal pair per batch entry, computed from that entry's values on the
shared pattern.

Two policies are provided:

* :func:`row_scaling` — scale every row by the inverse of its infinity
  norm (``D_c = I``); cheap and often enough;
* :func:`symmetric_scaling` — one Jacobi-style sweep scaling rows *and*
  columns by inverse square roots of the diagonal magnitudes (useful for
  nearly-symmetric problems).

The returned :class:`ScaledSystem` carries everything needed to solve and
un-scale; the matrix object it holds is a new batch sharing the original
pattern arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .batch_csr import BatchCsr
from .convert import to_format
from .types import DTYPE, InvalidFormatError

__all__ = ["ScaledSystem", "row_scaling", "symmetric_scaling"]


@dataclass(frozen=True)
class ScaledSystem:
    """An equilibrated batch system.

    Attributes
    ----------
    matrix:
        The scaled batch matrix ``D_r A D_c`` (CSR).
    row_scale:
        ``(num_batch, n)`` row factors ``D_r``.
    col_scale:
        ``(num_batch, n)`` column factors ``D_c``.
    """

    matrix: BatchCsr
    row_scale: np.ndarray
    col_scale: np.ndarray

    def scale_rhs(self, b: np.ndarray) -> np.ndarray:
        """Transform a right-hand side: ``b' = D_r b``."""
        return b * self.row_scale

    def unscale_solution(self, y: np.ndarray) -> np.ndarray:
        """Recover the original unknowns: ``x = D_c y``."""
        return y * self.col_scale

    def solve_with(self, solver, b: np.ndarray, x0: np.ndarray | None = None):
        """Convenience: solve the scaled system and return the unscaled
        :class:`~repro.core.types.SolveResult` (solution transformed,
        diagnostics of the scaled solve kept)."""
        y0 = None if x0 is None else x0 / self.col_scale
        res = solver.solve(self.matrix, self.scale_rhs(b), x0=y0)
        res.x = self.unscale_solution(res.x)
        return res


def _scaled_values(csr: BatchCsr, row_scale: np.ndarray, col_scale: np.ndarray):
    rows = np.repeat(
        np.arange(csr.num_rows, dtype=np.int64), csr.nnz_per_row()
    )
    cols = csr.col_idxs.astype(np.int64)
    return csr.values * row_scale[:, rows] * col_scale[:, cols]


def row_scaling(matrix) -> ScaledSystem:
    """Equilibrate rows to unit infinity norm, per system.

    Rows that are entirely zero in a system are left unscaled (factor 1).
    """
    csr = to_format(matrix, "csr")
    rows = np.repeat(np.arange(csr.num_rows, dtype=np.int64), csr.nnz_per_row())
    inf_norm = np.zeros((csr.num_batch, csr.num_rows), dtype=DTYPE)
    np.maximum.at(inf_norm, (slice(None), rows), np.abs(csr.values))
    # Lone zero rows: leave them alone rather than dividing by zero.
    safe = np.where(inf_norm > 0.0, inf_norm, 1.0)
    row_scale = 1.0 / safe
    col_scale = np.ones_like(row_scale)
    scaled = BatchCsr(
        csr.num_cols, csr.row_ptrs, csr.col_idxs,
        _scaled_values(csr, row_scale, col_scale), check=False,
    )
    return ScaledSystem(scaled, row_scale, col_scale)


def symmetric_scaling(matrix) -> ScaledSystem:
    """Jacobi-style symmetric equilibration: ``D = diag(|a_ii|)^{-1/2}``.

    Requires non-zero diagonals (like the Jacobi preconditioner).  After
    scaling, every diagonal entry has magnitude one.
    """
    csr = to_format(matrix, "csr")
    diag = csr.diagonal()
    if np.any(diag == 0.0):
        raise InvalidFormatError(
            "symmetric scaling requires non-zero diagonals"
        )
    scale = 1.0 / np.sqrt(np.abs(diag))
    scaled = BatchCsr(
        csr.num_cols, csr.row_ptrs, csr.col_idxs,
        _scaled_values(csr, scale, scale), check=False,
    )
    return ScaledSystem(scaled, scale.copy(), scale.copy())
