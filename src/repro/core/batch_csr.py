"""``BatchCsr``: a batch of sparse matrices sharing one CSR sparsity pattern.

The format stores the classical CSR metadata — ``row_ptrs`` and ``col_idxs``
— exactly once for the whole batch, plus a dense ``(num_batch, nnz)`` values
array holding every entry of every system.  This is the direct analogue of
Ginkgo's ``BatchCsr``: the pattern is read-only and cacheable while the
values stream through.

Storage cost (paper, Section IV-A)::

    num_batch * nnz            values
    + (num_rows + 1)           row pointers
    + nnz                      column indices
"""

from __future__ import annotations

from ..utils.validation import as_index_array, as_value_array
from .backend import backend_of, host as np
from .types import DTYPE, INDEX_DTYPE, BatchShape, DimensionMismatch, InvalidFormatError

__all__ = ["BatchCsr"]


class BatchCsr:
    """Batch of sparse matrices with a shared CSR sparsity pattern.

    Parameters
    ----------
    num_cols:
        Number of columns of each system.
    row_ptrs:
        Shared row-pointer array of shape ``(num_rows + 1,)``.
    col_idxs:
        Shared column-index array of shape ``(nnz,)``.
    values:
        Per-system values of shape ``(num_batch, nnz)``.
    check:
        When True (default) the pattern invariants are validated once at
        construction: monotone row pointers, in-range column indices.
    """

    format_name = "csr"

    def __init__(
        self,
        num_cols: int,
        row_ptrs: np.ndarray,
        col_idxs: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        row_ptrs = as_index_array(row_ptrs, "row_ptrs", ndim=1)
        col_idxs = as_index_array(col_idxs, "col_idxs", ndim=1)
        values = as_value_array(values, "values", ndim=2)

        num_rows = row_ptrs.shape[0] - 1
        if num_rows < 1:
            raise InvalidFormatError("row_ptrs must have at least 2 entries")
        nnz = col_idxs.shape[0]
        if values.shape[1] != nnz:
            raise DimensionMismatch(
                f"values has {values.shape[1]} entries per system but "
                f"col_idxs implies nnz={nnz}"
            )
        if check:
            if row_ptrs[0] != 0 or row_ptrs[-1] != nnz:
                raise InvalidFormatError(
                    f"row_ptrs must start at 0 and end at nnz={nnz}, "
                    f"got [{row_ptrs[0]}, {row_ptrs[-1]}]"
                )
            if np.any(np.diff(row_ptrs) < 0):
                raise InvalidFormatError("row_ptrs must be non-decreasing")
            if nnz and (col_idxs.min() < 0 or col_idxs.max() >= num_cols):
                raise InvalidFormatError(
                    f"col_idxs must lie in [0, {num_cols}), got range "
                    f"[{col_idxs.min()}, {col_idxs.max()}]"
                )

        self._row_ptrs = row_ptrs
        self._col_idxs = col_idxs
        self._values = values
        self._shape = BatchShape(values.shape[0], num_rows, int(num_cols))

    # -- attributes ------------------------------------------------------

    @property
    def row_ptrs(self) -> np.ndarray:
        """Shared row pointers, shape ``(num_rows + 1,)``."""
        return self._row_ptrs

    @property
    def col_idxs(self) -> np.ndarray:
        """Shared column indices, shape ``(nnz,)``."""
        return self._col_idxs

    @property
    def values(self) -> np.ndarray:
        """Per-system non-zero values, shape ``(num_batch, nnz)``."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the stored entries (float32 or float64)."""
        return self._values.dtype

    @property
    def shape(self) -> BatchShape:
        return self._shape

    @property
    def num_batch(self) -> int:
        return self._shape.num_batch

    @property
    def num_rows(self) -> int:
        return self._shape.num_rows

    @property
    def num_cols(self) -> int:
        return self._shape.num_cols

    @property
    def nnz_per_system(self) -> int:
        """Stored non-zeros per batch entry."""
        return self._col_idxs.shape[0]

    def nnz_per_row(self) -> np.ndarray:
        """Non-zeros in each row of the shared pattern."""
        return np.diff(self._row_ptrs)

    def storage_bytes(self) -> int:
        """Total bytes: values + shared pattern (Fig. 3 accounting)."""
        return self._values.nbytes + self._row_ptrs.nbytes + self._col_idxs.nbytes

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, dense_values: np.ndarray, *, tol: float = 0.0) -> "BatchCsr":
        """Build from a dense ``(num_batch, n, m)`` array.

        The shared pattern is the *union* of the patterns of all entries:
        a position is stored if any system has ``|a_ij| > tol`` there, so no
        system loses information.
        """
        dense_values = as_value_array(dense_values, "dense_values", ndim=3)
        mask = np.any(np.abs(dense_values) > tol, axis=0)
        rows, cols = np.nonzero(mask)
        num_rows = dense_values.shape[1]
        row_counts = np.bincount(rows, minlength=num_rows)
        row_ptrs = np.zeros(num_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(row_counts, out=row_ptrs[1:])
        values = dense_values[:, rows, cols]
        return cls(dense_values.shape[2], row_ptrs, cols.astype(INDEX_DTYPE), values)

    @classmethod
    def from_coo(
        cls,
        num_batch: int,
        num_rows: int,
        num_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
    ) -> "BatchCsr":
        """Build from shared COO triplets with per-system values.

        ``rows``/``cols`` have shape ``(nnz,)``; ``values`` has shape
        ``(num_batch, nnz)``.  Duplicate (row, col) pairs are summed, as in
        standard finite-element assembly.
        """
        rows = as_index_array(rows, "rows", ndim=1)
        cols = as_index_array(cols, "cols", ndim=1)
        values = as_value_array(values, "values", ndim=2)
        if values.shape != (num_batch, rows.shape[0]):
            raise DimensionMismatch(
                f"values must have shape ({num_batch}, {rows.shape[0]}), "
                f"got {values.shape}"
            )
        if rows.size and (rows.min() < 0 or rows.max() >= num_rows):
            raise InvalidFormatError("row indices out of range")
        if cols.size and (cols.min() < 0 or cols.max() >= num_cols):
            raise InvalidFormatError("column indices out of range")

        # Sort lexicographically by (row, col), then fold duplicates.
        order = np.lexsort((cols, rows))
        rows_s, cols_s = rows[order], cols[order]
        vals_s = values[:, order]
        if rows_s.size:
            new_group = np.empty(rows_s.shape[0], dtype=bool)
            new_group[0] = True
            new_group[1:] = (np.diff(rows_s) != 0) | (np.diff(cols_s) != 0)
            group_ids = np.cumsum(new_group) - 1
            n_groups = int(group_ids[-1]) + 1
            folded = np.zeros((num_batch, n_groups), dtype=values.dtype)
            np.add.at(folded.T, group_ids, vals_s.T)
            rows_u = rows_s[new_group]
            cols_u = cols_s[new_group]
        else:
            folded = values.copy()
            rows_u = rows_s
            cols_u = cols_s

        row_counts = np.bincount(rows_u, minlength=num_rows)
        row_ptrs = np.zeros(num_rows + 1, dtype=INDEX_DTYPE)
        np.cumsum(row_counts, out=row_ptrs[1:])
        return cls(num_cols, row_ptrs, cols_u, folded)

    # -- access / conversion -----------------------------------------------

    def entry_dense(self, batch_index: int) -> np.ndarray:
        """Materialise one batch entry as a dense 2-D array."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=self._values.dtype)
        rows = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), self.nnz_per_row()
        )
        out[rows, self._col_idxs] = self._values[batch_index]
        return out

    def diagonal(self) -> np.ndarray:
        """Per-system main diagonals, shape ``(num_batch, min(n, m))``.

        Missing diagonal entries (not in the pattern) come back as 0.
        """
        n = min(self.num_rows, self.num_cols)
        bk = backend_of(self._values)
        diag = bk.zeros((self.num_batch, n), self._values.dtype)
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), self.nnz_per_row())
        on_diag = (rows == self._col_idxs) & (rows < n)
        diag = bk.at_set(
            diag, (slice(None), rows[on_diag]), self._values[:, on_diag]
        )
        return diag

    def copy(self) -> "BatchCsr":
        """Deep copy (pattern arrays are shared; they are read-only by contract)."""
        return BatchCsr(
            self.num_cols,
            self._row_ptrs,
            self._col_idxs,
            self._values.copy(),
            check=False,
        )

    def astype(self, dtype) -> "BatchCsr":
        """Batch with values cast to ``dtype`` (self when already there).

        The shared sparsity pattern is reused by reference, so a cast
        batch can be refreshed in place from a same-pattern source with
        ``np.copyto(cast.values, src.values, casting="same_kind")``.
        """
        if self._values.dtype == np.dtype(dtype):
            return self
        return BatchCsr(
            self.num_cols,
            self._row_ptrs,
            self._col_idxs,
            self._values.astype(dtype),
            check=False,
        )

    def take_batch(
        self, indices: np.ndarray, *, values_out: np.ndarray | None = None
    ) -> "BatchCsr":
        """Gather a sub-batch of systems into a compact batch.

        ``indices`` is an integer index array or boolean mask over the batch
        axis.  The shared sparsity pattern is reused by reference; only the
        selected systems' values are gathered — this is the host analogue of
        the GPU gather that active-batch compaction performs when most of a
        batch has converged.  Each selected system's values are bit-identical
        to the original, so its SpMV results are unchanged.  ``values_out``
        is optional preallocated storage for the gathered values (leading
        ``len(indices)`` systems used), making repeated compaction events
        allocation-free.
        """
        indices = np.asarray(indices)
        bk = backend_of(self._values)
        if values_out is not None and bk.is_host:
            if indices.dtype == np.bool_:
                indices = np.flatnonzero(indices)
            gathered = values_out[: indices.size]
            np.take(self._values, indices, axis=0, out=gathered)
        else:
            gathered = bk.take(self._values, indices)
        return BatchCsr(
            self.num_cols,
            self._row_ptrs,
            self._col_idxs,
            gathered,
            check=False,
        )

    def scale_values(self, factor: float | np.ndarray) -> "BatchCsr":
        """Return a new batch with values scaled per system (or globally)."""
        factor = np.asarray(factor, dtype=self._values.dtype)
        if factor.ndim == 1:
            factor = factor[:, None]
        return BatchCsr(
            self.num_cols,
            self._row_ptrs,
            self._col_idxs,
            self._values * factor,
            check=False,
        )

    # -- matrix-vector products ---------------------------------------------

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched SpMV ``out[k] = A[k] @ x[k]``.

        The kernel gathers ``x`` at the shared column indices for all systems
        at once, multiplies elementwise with the values, and segment-reduces
        with :func:`numpy.add.reduceat` over the shared row extents —
        mirroring the one-warp-per-row reduction of the GPU kernel while
        staying fully vectorised over the batch.
        """
        self._shape.compatible_vector(x, "x")
        bk = backend_of(self._values, x)
        return bk.csr_spmv(self._row_ptrs, self._col_idxs, self._values, x, out=out)

    def advanced_apply(
        self,
        alpha: float | np.ndarray,
        x: np.ndarray,
        beta: float | np.ndarray,
        y: np.ndarray,
        *,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """In-place fused ``y[k] = alpha*A[k]@x[k] + beta*y[k]``.

        ``work`` is an optional ``(num_batch, num_rows)`` scratch buffer
        that receives the product; with it the update adds no batch-vector
        allocation beyond the gather.  ``work`` must not alias ``x`` or
        ``y``.
        """
        ax = self.apply(x, out=work)
        return backend_of(ax, y).fma_update(ax, alpha, beta, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._shape
        return (
            f"BatchCsr(num_batch={s.num_batch}, shape={s.num_rows}x{s.num_cols}, "
            f"nnz={self.nnz_per_system})"
        )
