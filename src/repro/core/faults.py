"""Per-system solver health: the breakdown taxonomy of the batched solvers.

The paper's central operational claim is *per-system* convergence
monitoring: in a batch of thousands of collision systems one degenerate
system must neither poison its neighbours nor stall the Picard loop.  This
module gives that claim a first-class vocabulary — a :class:`SolverHealth`
status per system, in the spirit of Ginkgo's batched stopping-criterion /
logger objects — detected inside the shared
:class:`~repro.core.solvers.base.IterationDriver` by vectorised guards:

* **non-finite** residual norms (NaN/Inf anywhere in a system's residual),
* **divergence** (residual grew by ``divergence_factor`` over its start),
* **stagnation** (no relative improvement of the best residual for
  ``stagnation_window`` consecutive loop trips),
* **breakdown** of the Krylov recurrences, flagged by the solver bodies
  themselves the moment a defining scalar (``rho``-family or
  ``omega``-family denominator) is exactly zero or non-finite.

Health codes are ordered *best to worst* so per-system aggregation across
solves or ranks is a plain ``np.maximum`` and "the batch's worst state" is
``health.max()``.  Unhealthy systems are deactivated on detection — they
stop iterating (and stop being charged work) while the healthy remainder
proceeds untouched; the
:class:`~repro.core.solvers.escalation.EscalationSolver` can then re-solve
exactly the unhealthy subset up a ladder of stronger methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..utils.validation import check_positive

__all__ = [
    "SolverHealth",
    "HealthOptions",
    "HEALTH_DTYPE",
    "health_counts",
    "worst_health",
    "summarize_health",
    "derive_health",
]

#: Storage dtype of per-system health arrays (one byte per system, like the
#: GPU status word of Ginkgo's batched stopping criterion).
HEALTH_DTYPE = np.int8


class SolverHealth(IntEnum):
    """Per-system solve status, ordered from best to worst.

    The ordering is load-bearing: ``np.maximum`` of two health arrays is
    the correct "worst of" aggregation (across Picard iterations, ranks, or
    escalation rungs).
    """

    CONVERGED = 0       #: met the stopping criterion
    ITERATING = 1       #: healthy but ran out of iteration budget
    STAGNATED = 2       #: no residual progress for a full stagnation window
    DIVERGED = 3        #: residual grew far beyond its starting value
    BREAKDOWN_RHO = 4   #: BiCG-family rho / alpha-denominator hit exact 0 or NaN
    BREAKDOWN_OMEGA = 5 #: stabiliser omega (t.s / t.t) hit exact 0 or NaN
    NON_FINITE = 6      #: NaN/Inf in the residual (poisoned operands)


@dataclass(frozen=True)
class HealthOptions:
    """Thresholds of the driver's vectorised health guards.

    Attributes
    ----------
    enabled:
        Master switch; ``False`` restores the pre-health behaviour (systems
        keep burning iterations to ``max_iter``, health stays ITERATING).
    divergence_factor:
        A system is DIVERGED once its residual norm exceeds this factor
        times its *initial* residual norm.  Scale-invariant: both sides
        scale with the system, so uniformly rescaled batches make identical
        decisions.
    stagnation_window:
        Loop trips without a relative best-residual improvement of at least
        ``stagnation_rtol`` before a system is declared STAGNATED.  The
        clock is driver trips (Arnoldi steps for GMRES), not wall time.
        ``0`` disables the stagnation guard.
    stagnation_rtol:
        Minimum relative improvement of the running best residual that
        counts as progress (``new < (1 - rtol) * best``).
    """

    enabled: bool = True
    divergence_factor: float = 1e8
    stagnation_window: int = 100
    stagnation_rtol: float = 1e-4

    def __post_init__(self) -> None:
        check_positive(self.divergence_factor, "divergence_factor")
        if self.stagnation_window < 0:
            raise ValueError(
                f"stagnation_window must be >= 0, got {self.stagnation_window}"
            )
        if not 0.0 < self.stagnation_rtol < 1.0:
            raise ValueError(
                f"stagnation_rtol must lie in (0, 1), got {self.stagnation_rtol}"
            )


def health_counts(health: np.ndarray) -> dict[str, int]:
    """Histogram of a health array keyed by state name (zero counts omitted)."""
    health = np.asarray(health)
    out: dict[str, int] = {}
    for state in SolverHealth:
        n = int(np.count_nonzero(health == state))
        if n:
            out[state.name.lower()] = n
    return out


def worst_health(*arrays: np.ndarray) -> np.ndarray:
    """Element-wise worst-of aggregation of per-system health arrays."""
    if not arrays:
        raise ValueError("worst_health needs at least one array")
    out = np.asarray(arrays[0], dtype=HEALTH_DTYPE).copy()
    for arr in arrays[1:]:
        np.maximum(out, np.asarray(arr, dtype=HEALTH_DTYPE), out=out)
    return out


def summarize_health(health: np.ndarray) -> str:
    """One-line human summary, e.g. ``"converged: 30, breakdown_rho: 2"``."""
    counts = health_counts(health)
    if not counts:
        return "empty batch"
    return ", ".join(f"{name}: {n}" for name, n in counts.items())


def derive_health(
    converged: np.ndarray, residual_norms: np.ndarray | None = None
) -> np.ndarray:
    """Coarse health from a solve without driver-level monitoring.

    Direct solvers and the refinement wrapper report only convergence flags
    and final norms; this maps them onto the taxonomy: CONVERGED,
    NON_FINITE (norm is NaN/Inf), or ITERATING for everything else.
    """
    converged = np.asarray(converged, dtype=bool)
    health = np.where(
        converged, SolverHealth.CONVERGED, SolverHealth.ITERATING
    ).astype(HEALTH_DTYPE)
    if residual_norms is not None:
        bad = ~converged & ~np.isfinite(np.asarray(residual_norms))
        health[bad] = SolverHealth.NON_FINITE
    return health
