"""Fused, allocation-free batched BLAS-1 helpers for the solver hot path.

The iterative solvers originally expressed per-system masking with the
``dst = np.where(mask, new, old)`` idiom — every such statement allocates a
full ``(num_batch, num_rows)`` temporary *and* copies the untouched systems.
Rupp et al. ("Pipelined Iterative Solvers with Kernel Fusion") show that for
small systems it is exactly this BLAS-1 glue, not the SpMV, that dominates
the solve; the helpers here are its host-side answer:

* masked updates are in-place (``np.copyto``/ufunc ``where=``), touching
  only the systems named by the mask,
* fused multi-operand updates stream through a caller-provided scratch
  buffer (a :class:`~repro.core.workspace.SolverWorkspace` vector), so the
  whole Picard loop performs zero batch-vector-sized allocations after the
  first solve.

Per-system coefficient arrays of shape ``(num_batch,)`` broadcast over the
row axis; Python scalars are accepted everywhere a coefficient is.

Every helper dispatches through the array-backend seam
(:mod:`repro.core.backend`): host arrays take the original in-place NumPy
path verbatim (bit-identical), device arrays take the backend's functional
fallback and the helper **returns the updated array** — callers rebind the
result, which is a no-op under NumPy since the destination itself is
returned.

Conventions
-----------
``mask`` is a per-system boolean array of shape ``(num_batch,)``; it is
broadcast across rows when the destination is a batch vector.  ``work``
buffers must have the destination's shape and must not alias any operand.
"""

from __future__ import annotations

from .backend import _per_system, backend_of, host as np

__all__ = [
    "axpby",
    "fused_dots",
    "masked_assign",
    "masked_fill",
    "masked_axpy",
    "fused_update",
    "pipelined_cg_update",
]


def masked_assign(dst: np.ndarray, src: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """``dst[k] = src[k]`` for systems where ``mask[k]`` is True.

    Replaces ``dst = np.where(mask, src, dst)`` — in place (no allocation,
    untouched systems not rewritten) on the host backend, functionally on
    immutable device arrays.  Works on batch vectors ``(num_batch, n)``
    and per-system scalars ``(num_batch,)`` alike.
    """
    return backend_of(dst).masked_assign(dst, src, mask)


def masked_fill(dst: np.ndarray, value: float, mask: np.ndarray) -> np.ndarray:
    """``dst[k] = value`` for systems where ``mask[k]`` is True."""
    return backend_of(dst).masked_fill(dst, value, mask)


def masked_axpy(
    y: np.ndarray,
    alpha,
    x: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``y[k] += alpha[k] * x[k]``, restricted to masked systems.

    On the host the scaled operand is formed in ``work`` (allocated only
    when the caller does not supply a scratch buffer) and added in place;
    systems outside the mask are left untouched — the compacted
    replacement for ``y += np.where(mask[:, None], alpha[:, None] * x,
    0.0)``.  Device backends ignore ``work`` and return a new array.
    """
    return backend_of(y).masked_axpy(y, alpha, x, mask=mask, work=work)


def axpby(
    alpha,
    x: np.ndarray,
    beta,
    y: np.ndarray,
    *,
    out: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``out[k] = alpha[k] * x[k] + beta[k] * y[k]``.

    ``out`` may alias ``x`` or ``y`` (the common in-place updates).  One
    scaled term always streams through ``work``; pass a workspace vector to
    keep the update allocation-free on the host backend.
    """
    return backend_of(x, y).axpby(alpha, x, beta, y, out=out, work=work)


def fused_dots(
    *pairs: tuple[np.ndarray, np.ndarray],
    out: np.ndarray | None = None,
    dtype=None,
) -> np.ndarray:
    """Fused reduction round: ``k`` batched dot products in one pass.

    Each operand pair ``(a, b)`` of shape ``(num_batch, n)`` contributes
    one row of the ``(k, num_batch)`` result — the host analogue of the
    pipelined solvers' single fused-reduction kernel, and the unit the
    schedule layer counts as *one* synchronization round regardless of
    ``k``.  Every row is computed with the exact ``batch_dot`` einsum
    (same contraction order, same ``dtype`` accumulation), so the fused
    path is bit-identical to ``k`` separate ``batch_dot`` calls; the win
    it models is the collapsed device-wide reduction + barrier, not a
    different summation.

    Reduction results live on the host regardless of the operand backend
    (convergence control is host-side), so ``out`` is always a host
    ``(k, num_batch)`` array.

    ``dtype`` sets the accumulation dtype of every reduction (the mixed
    policy passes float64).
    """
    if not pairs:
        raise ValueError("fused_dots needs at least one (a, b) operand pair")
    num_batch = pairs[0][0].shape[0]
    if out is None:
        res_dtype = np.result_type(
            dtype if dtype is not None else pairs[0][0].dtype, *[a.dtype for a, _ in pairs]
        )
        out = np.empty((len(pairs), num_batch), dtype=res_dtype)
    if out.shape != (len(pairs), num_batch):
        raise ValueError(
            f"fused_dots out has shape {out.shape}, expected {(len(pairs), num_batch)}"
        )
    for row, (a, b) in zip(out, pairs):
        if a.shape != b.shape:
            raise ValueError(
                f"fused_dots operands differ in shape: {a.shape} vs {b.shape}"
            )
        bk = backend_of(a, b)
        if bk.is_host:
            np.einsum("bi,bi->b", a, b, out=row, dtype=dtype)
        else:
            bk.dot(a, b, out=row, dtype=dtype)
    return out


def fused_update(
    p: np.ndarray,
    r: np.ndarray,
    beta,
    omega,
    v: np.ndarray,
    *,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused BiCGSTAB direction update ``p = r + beta * (p - omega * v)``.

    On the host the four elementary operations are chained through
    ``work`` and ``p`` itself, so the update performs zero allocations —
    this fuses the three separate broadcast statements (each with its own
    temporary) the solver used to issue.  Device backends jit the whole
    expression into one kernel and return a new ``p``.
    """
    return backend_of(p).fused_update(p, r, beta, omega, v, work=work)


def pipelined_cg_update(
    p: np.ndarray,
    s: np.ndarray,
    u: np.ndarray,
    w: np.ndarray,
    x: np.ndarray,
    r: np.ndarray,
    alpha,
    beta,
    *,
    work: np.ndarray | None = None,
) -> tuple:
    """Merged Chronopoulos–Gear recurrence block of pipelined CG.

    Performs (in place and allocation-free on the host; functionally,
    as one jitted kernel, on device backends)::

        p = u + beta * p          # search direction
        s = w + beta * s          # recurrence for A p (no extra SpMV)
        x = x + alpha * p
        r = r - alpha * s

    and returns the updated ``(p, s, x, r)`` tuple for rebinding.

    On a GPU these four vector updates fuse into a single kernel between
    the SpMV and the one fused reduction of the iteration; on the host the
    scaled operands stream through ``work``.  Frozen systems are handled
    by the caller zeroing their ``alpha``/``beta`` coefficients, so every
    system can be updated unconditionally (masked coefficients, not
    masked kernels — the schedule counts this as one fused group).
    """
    return backend_of(p).pipelined_cg_update(
        p, s, u, w, x, r, alpha, beta, work=work
    )
