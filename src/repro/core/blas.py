"""Fused, allocation-free batched BLAS-1 helpers for the solver hot path.

The iterative solvers originally expressed per-system masking with the
``dst = np.where(mask, new, old)`` idiom — every such statement allocates a
full ``(num_batch, num_rows)`` temporary *and* copies the untouched systems.
Rupp et al. ("Pipelined Iterative Solvers with Kernel Fusion") show that for
small systems it is exactly this BLAS-1 glue, not the SpMV, that dominates
the solve; the helpers here are its host-side answer:

* masked updates are in-place (``np.copyto``/ufunc ``where=``), touching
  only the systems named by the mask,
* fused multi-operand updates stream through a caller-provided scratch
  buffer (a :class:`~repro.core.workspace.SolverWorkspace` vector), so the
  whole Picard loop performs zero batch-vector-sized allocations after the
  first solve.

Per-system coefficient arrays of shape ``(num_batch,)`` broadcast over the
row axis; Python scalars are accepted everywhere a coefficient is.

Conventions
-----------
``mask`` is a per-system boolean array of shape ``(num_batch,)``; it is
broadcast across rows when the destination is a batch vector.  ``work``
buffers must have the destination's shape and must not alias any operand.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "axpby",
    "fused_dots",
    "masked_assign",
    "masked_fill",
    "masked_axpy",
    "fused_update",
    "pipelined_cg_update",
]


def _per_system(coeff) -> np.ndarray | float:
    """Reshape a ``(num_batch,)`` coefficient for row-axis broadcasting."""
    coeff = np.asarray(coeff)
    if coeff.ndim == 1:
        return coeff[:, None]
    return coeff


def _expand_mask(mask: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Broadcast a per-system mask to the destination's dimensionality."""
    if mask.ndim == dst.ndim:
        return mask
    return mask.reshape(mask.shape + (1,) * (dst.ndim - mask.ndim))


def masked_assign(dst: np.ndarray, src: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """In-place ``dst[k] = src[k]`` for systems where ``mask[k]`` is True.

    Replaces ``dst = np.where(mask, src, dst)`` without allocating and
    without rewriting the untouched systems.  Works on batch vectors
    ``(num_batch, n)`` and per-system scalars ``(num_batch,)`` alike.
    """
    np.copyto(dst, src, where=_expand_mask(mask, dst))
    return dst


def masked_fill(dst: np.ndarray, value: float, mask: np.ndarray) -> np.ndarray:
    """In-place ``dst[k] = value`` for systems where ``mask[k]`` is True."""
    np.copyto(dst, value, where=_expand_mask(mask, dst))
    return dst


def masked_axpy(
    y: np.ndarray,
    alpha,
    x: np.ndarray,
    *,
    mask: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``y[k] += alpha[k] * x[k]``, restricted to masked systems.

    The scaled operand is formed in ``work`` (allocated only when the caller
    does not supply a scratch buffer) and added in place; systems outside
    the mask are left untouched — the compacted replacement for
    ``y += np.where(mask[:, None], alpha[:, None] * x, 0.0)``.
    """
    if work is None:
        work = np.empty_like(y)
    np.multiply(x, _per_system(alpha), out=work)
    if mask is None:
        np.add(y, work, out=y)
    else:
        np.add(y, work, out=y, where=_expand_mask(mask, y))
    return y


def axpby(
    alpha,
    x: np.ndarray,
    beta,
    y: np.ndarray,
    *,
    out: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``out[k] = alpha[k] * x[k] + beta[k] * y[k]``.

    ``out`` may alias ``x`` or ``y`` (the common in-place updates).  One
    scaled term always streams through ``work``; pass a workspace vector to
    keep the update allocation-free.
    """
    if out is None:
        out = np.empty_like(y)
    if work is None:
        work = np.empty_like(y)
    if out is x:
        np.multiply(y, _per_system(beta), out=work)
        np.multiply(x, _per_system(alpha), out=out)
    else:
        np.multiply(x, _per_system(alpha), out=work)
        np.multiply(y, _per_system(beta), out=out)
    np.add(out, work, out=out)
    return out


def fused_dots(
    *pairs: tuple[np.ndarray, np.ndarray],
    out: np.ndarray | None = None,
    dtype=None,
) -> np.ndarray:
    """Fused reduction round: ``k`` batched dot products in one pass.

    Each operand pair ``(a, b)`` of shape ``(num_batch, n)`` contributes
    one row of the ``(k, num_batch)`` result — the host analogue of the
    pipelined solvers' single fused-reduction kernel, and the unit the
    schedule layer counts as *one* synchronization round regardless of
    ``k``.  Every row is computed with the exact ``batch_dot`` einsum
    (same contraction order, same ``dtype`` accumulation), so the fused
    path is bit-identical to ``k`` separate ``batch_dot`` calls; the win
    it models is the collapsed device-wide reduction + barrier, not a
    different summation.

    ``dtype`` sets the accumulation dtype of every reduction (the mixed
    policy passes float64); ``out`` must have shape ``(k, num_batch)``.
    """
    if not pairs:
        raise ValueError("fused_dots needs at least one (a, b) operand pair")
    num_batch = pairs[0][0].shape[0]
    if out is None:
        res_dtype = np.result_type(
            dtype if dtype is not None else pairs[0][0].dtype, *[a.dtype for a, _ in pairs]
        )
        out = np.empty((len(pairs), num_batch), dtype=res_dtype)
    if out.shape != (len(pairs), num_batch):
        raise ValueError(
            f"fused_dots out has shape {out.shape}, expected {(len(pairs), num_batch)}"
        )
    for row, (a, b) in zip(out, pairs):
        if a.shape != b.shape:
            raise ValueError(
                f"fused_dots operands differ in shape: {a.shape} vs {b.shape}"
            )
        np.einsum("bi,bi->b", a, b, out=row, dtype=dtype)
    return out


def fused_update(
    p: np.ndarray,
    r: np.ndarray,
    beta,
    omega,
    v: np.ndarray,
    *,
    work: np.ndarray,
) -> np.ndarray:
    """Fused BiCGSTAB direction update ``p = r + beta * (p - omega * v)``.

    The four elementary operations are chained through ``work`` and ``p``
    itself, so the update performs zero allocations — this fuses the three
    separate broadcast statements (each with its own temporary) the solver
    used to issue.
    """
    np.multiply(v, _per_system(omega), out=work)
    np.subtract(p, work, out=p)
    np.multiply(p, _per_system(beta), out=p)
    np.add(p, r, out=p)
    return p


def pipelined_cg_update(
    p: np.ndarray,
    s: np.ndarray,
    u: np.ndarray,
    w: np.ndarray,
    x: np.ndarray,
    r: np.ndarray,
    alpha,
    beta,
    *,
    work: np.ndarray,
) -> None:
    """Merged Chronopoulos–Gear recurrence block of pipelined CG.

    Performs, in place and allocation-free::

        p = u + beta * p          # search direction
        s = w + beta * s          # recurrence for A p (no extra SpMV)
        x = x + alpha * p
        r = r - alpha * s

    On a GPU these four vector updates fuse into a single kernel between
    the SpMV and the one fused reduction of the iteration; on the host the
    scaled operands stream through ``work``.  Frozen systems are handled
    by the caller zeroing their ``alpha``/``beta`` coefficients, so every
    system can be updated unconditionally (masked coefficients, not
    masked kernels — the schedule counts this as one fused group).
    """
    a = _per_system(alpha)
    be = _per_system(beta)
    np.multiply(p, be, out=p)
    np.add(p, u, out=p)
    np.multiply(s, be, out=s)
    np.add(s, w, out=s)
    np.multiply(p, a, out=work)
    np.add(x, work, out=x)
    np.multiply(s, a, out=work)
    np.subtract(r, work, out=r)
