"""``BatchDia``: a batch of sparse matrices in shared DIA (diagonal) layout.

The XGC collision matrix is a fixed 9-point stencil on a tensor-product
velocity grid: every non-zero sits on one of at most nine *constant
diagonals* ``col - row = d``.  CSR and ELL both spend memory traffic on
column-index arrays that, for such a matrix, encode nothing but those nine
constants — and their SpMV kernels spend an indexed gather per stored entry
to honour them.  DIA stores the shared sorted offset array ``(num_diags,)``
once for the whole batch plus per-system diagonal value bands
``(num_batch, num_diags, num_rows)``, and its SpMV is **gather-free**: each
diagonal ``d`` contributes through a contiguous shifted slice ::

    out[:, lo:hi] += values[:, k, lo:hi] * x[:, lo + d : hi + d]

with ``lo = max(0, -d)`` and ``hi = min(num_rows, num_cols - d)`` — no
``col_idxs`` load, no fancy indexing, pure strided AXPYs.  This extends the
paper's CSR-vs-ELL format study (Section IV-A) one step further in the
direction Ginkgo's format portfolio points: when the access pattern is a
compile-time constant, stop reading it from memory.

Band positions outside the matrix (the *fringe* of an off-diagonal: rows
``< lo`` or ``>= hi``) are stored as exactly ``0.0`` so every diagonal has
uniform length — the DIA analogue of ELL's padding, and equally cheap for
the stencil's small offsets.

Storage cost (extending the paper's Fig. 3 accounting)::

    num_batch * (num_diags * num_rows)   values (incl. fringe padding)
    + num_diags                          diagonal offsets

The index metadata is ``num_diags`` integers *total* — versus ``nnz``
integers for ELL and ``nnz + num_rows + 1`` for CSR — which is why the
modelled per-SpMV memory traffic of DIA is the lowest of the three sparse
formats (see ``docs/performance_model.md``).
"""

from __future__ import annotations

from ..utils.validation import as_index_array, as_value_array
from .backend import backend_of, host as np
from .types import BatchShape, DimensionMismatch, InvalidFormatError

__all__ = ["BatchDia"]


class BatchDia:
    """Batch of sparse matrices with a shared set of constant diagonals.

    Parameters
    ----------
    num_cols:
        Number of columns of each system.
    offsets:
        Shared diagonal offsets ``col - row``, shape ``(num_diags,)``,
        strictly increasing (the main diagonal is offset 0, superdiagonals
        are positive).
    values:
        Per-system diagonal bands, shape ``(num_batch, num_diags,
        num_rows)``; band position ``r`` of diagonal ``d`` holds entry
        ``(r, r + d)``.  Fringe positions (outside the matrix) must hold
        exactly ``0.0``.
    check:
        Validate pattern invariants at construction (default True).
    """

    format_name = "dia"

    def __init__(
        self,
        num_cols: int,
        offsets: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        offsets = as_index_array(offsets, "offsets", ndim=1)
        values = as_value_array(values, "values", ndim=3)
        num_diags = offsets.shape[0]
        if num_diags < 1:
            raise InvalidFormatError("offsets must hold at least one diagonal")
        if values.shape[1] != num_diags:
            raise DimensionMismatch(
                f"values must have shape (num_batch, {num_diags}, num_rows), "
                f"got {values.shape}"
            )
        num_rows = values.shape[2]
        num_cols = int(num_cols)
        if check:
            if np.any(np.diff(offsets) <= 0):
                raise InvalidFormatError("offsets must be strictly increasing")
            if offsets[0] <= -num_rows or offsets[-1] >= num_cols:
                raise InvalidFormatError(
                    f"offsets must lie in ({-num_rows}, {num_cols}), got range "
                    f"[{offsets[0]}, {offsets[-1]}]"
                )

        self._offsets = offsets
        self._values = values
        self._shape = BatchShape(values.shape[0], num_rows, num_cols)
        # Per-diagonal valid band [lo, hi): rows whose entry (r, r + d)
        # falls inside the matrix.  Computed once; every SpMV is then pure
        # slicing.  Plain Python ints so the hot loop does no array math.
        self._spans = tuple(
            (k, int(d), max(0, -int(d)), min(num_rows, num_cols - int(d)))
            for k, d in enumerate(offsets)
        )
        if check:
            fringe = self.fringe_mask()
            if fringe.any() and np.any(values[:, fringe] != 0.0):
                raise InvalidFormatError("fringe positions must hold value 0.0")
        # Lazily-allocated (num_batch, num_rows) scratch so apply() streams
        # each diagonal's product through a reused buffer: no batch-sized
        # temporaries per SpMV after the first (core/blas discipline).
        self._work: np.ndarray | None = None

    # -- attributes ------------------------------------------------------

    @property
    def offsets(self) -> np.ndarray:
        """Shared sorted diagonal offsets, shape ``(num_diags,)``."""
        return self._offsets

    @property
    def values(self) -> np.ndarray:
        """Per-system bands, shape ``(num_batch, num_diags, num_rows)``."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the stored entries (float32 or float64)."""
        return self._values.dtype

    @property
    def shape(self) -> BatchShape:
        return self._shape

    @property
    def num_batch(self) -> int:
        return self._shape.num_batch

    @property
    def num_rows(self) -> int:
        return self._shape.num_rows

    @property
    def num_cols(self) -> int:
        return self._shape.num_cols

    @property
    def num_diags(self) -> int:
        """Stored diagonals (the whole index metadata of the format)."""
        return self._offsets.shape[0]

    @property
    def nnz_per_system(self) -> int:
        """In-band stored positions per batch entry (fringe excluded)."""
        return sum(hi - lo for _, _, lo, hi in self._spans)

    @property
    def stored_per_system(self) -> int:
        """Stored values per batch entry, including fringe padding."""
        return self.num_diags * self.num_rows

    def fringe_mask(self) -> np.ndarray:
        """Boolean ``(num_diags, num_rows)`` mask of out-of-matrix positions."""
        mask = np.ones((self.num_diags, self.num_rows), dtype=bool)
        for k, _, lo, hi in self._spans:
            mask[k, lo:hi] = False
        return mask

    def padding_fraction(self) -> float:
        """Fraction of stored values that is fringe padding."""
        stored = self.stored_per_system
        return 0.0 if stored == 0 else 1.0 - self.nnz_per_system / stored

    def storage_bytes(self) -> int:
        """Total bytes: padded bands + the shared offsets (Fig. 3 style)."""
        return self._values.nbytes + self._offsets.nbytes

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(cls, dense_values: np.ndarray, *, tol: float = 0.0) -> "BatchDia":
        """Build from a dense ``(num_batch, n, m)`` array (union pattern).

        A diagonal is stored when any system has ``|a_ij| > tol`` anywhere
        on it; in-band positions of a stored diagonal that are zero in every
        system are stored as explicit zeros (the format has no way to skip
        them — that is its padding trade-off).
        """
        dense_values = as_value_array(dense_values, "dense_values", ndim=3)
        num_batch, num_rows, num_cols = dense_values.shape
        mask = np.any(np.abs(dense_values) > tol, axis=0)
        rows, cols = np.nonzero(mask)
        diag_of = cols.astype(np.int64) - rows
        offsets = np.unique(diag_of)
        if offsets.size == 0:
            offsets = np.zeros(1, dtype=np.int64)
        bands = np.zeros((num_batch, offsets.size, num_rows), dtype=dense_values.dtype)
        slot = np.searchsorted(offsets, diag_of)
        bands[:, slot, rows] = dense_values[:, rows, cols]
        return cls(num_cols, offsets, bands, check=False)

    # -- access / conversion -----------------------------------------------

    def entry_dense(self, batch_index: int) -> np.ndarray:
        """Materialise one batch entry as a dense 2-D array."""
        out = np.zeros((self.num_rows, self.num_cols), dtype=self._values.dtype)
        for k, d, lo, hi in self._spans:
            rows = np.arange(lo, hi)
            out[rows, rows + d] = self._values[batch_index, k, lo:hi]
        return out

    def diagonal(self) -> np.ndarray:
        """Per-system main diagonals, shape ``(num_batch, min(n, m))``.

        For DIA this is a pure slice of the offset-0 band — no search, no
        gather (zeros when the main diagonal is not stored).
        """
        n = min(self.num_rows, self.num_cols)
        pos = int(np.searchsorted(self._offsets, 0))
        if pos < self.num_diags and self._offsets[pos] == 0:
            return self._values[:, pos, :n].copy()
        return backend_of(self._values).zeros(
            (self.num_batch, n), self._values.dtype
        )

    def copy(self) -> "BatchDia":
        """Deep copy (shared offset array reused; read-only by contract)."""
        return BatchDia(
            self.num_cols, self._offsets, self._values.copy(), check=False
        )

    def astype(self, dtype) -> "BatchDia":
        """Batch with bands cast to ``dtype`` (self when already there)."""
        if self._values.dtype == np.dtype(dtype):
            return self
        return BatchDia(
            self.num_cols, self._offsets, self._values.astype(dtype), check=False
        )

    def take_batch(
        self, indices: np.ndarray, *, values_out: np.ndarray | None = None
    ) -> "BatchDia":
        """Gather a sub-batch of systems into a compact batch.

        ``indices`` is an integer index array or boolean mask over the
        batch axis.  The shared offsets are reused by reference; only the
        selected systems' bands are gathered, bit-for-bit (see
        :meth:`BatchCsr.take_batch <repro.core.batch_csr.BatchCsr.take_batch>`)
        — so :class:`~repro.core.compaction.BatchCompactor` works unchanged.
        ``values_out`` is optional preallocated storage for the gathered
        bands (leading ``len(indices)`` systems used).
        """
        indices = np.asarray(indices)
        bk = backend_of(self._values)
        if values_out is not None and bk.is_host:
            if indices.dtype == np.bool_:
                indices = np.flatnonzero(indices)
            gathered = values_out[: indices.size]
            np.take(self._values, indices, axis=0, out=gathered)
        else:
            gathered = bk.take(self._values, indices)
        return BatchDia(self.num_cols, self._offsets, gathered, check=False)

    def scale_values(self, factor: float | np.ndarray) -> "BatchDia":
        """Return a new batch with values scaled per system (or globally)."""
        factor = np.asarray(factor, dtype=self._values.dtype)
        if factor.ndim == 1:
            factor = factor[:, None, None]
        return BatchDia(
            self.num_cols, self._offsets, self._values * factor, check=False
        )

    # -- matrix-vector products ---------------------------------------------

    def _scratch(self) -> np.ndarray:
        if self._work is None:
            self._work = np.empty(
                (self.num_batch, max(self.num_rows, self.num_cols)),
                dtype=self._values.dtype,
            )
        return self._work

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched gather-free SpMV ``out[k] = A[k] @ x[k]``.

        One contiguous shifted-slice multiply-add per stored diagonal (9
        for the XGC stencil), vectorised over batch x rows.  No index array
        is read and no gather is issued: the diagonal structure *is* the
        addressing.  ``x`` must not alias ``out``.
        """
        self._shape.compatible_vector(x, "x")
        bk = backend_of(self._values, x)
        scratch = self._scratch() if bk.is_host else None
        return bk.dia_spmv(self._spans, self._values, x, out=out, scratch=scratch)

    def advanced_apply(
        self,
        alpha: float | np.ndarray,
        x: np.ndarray,
        beta: float | np.ndarray,
        y: np.ndarray,
        *,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """In-place fused ``y[k] = alpha*A[k]@x[k] + beta*y[k]``.

        ``work`` is an optional ``(num_batch, num_rows)`` scratch buffer
        (e.g. a :class:`~repro.core.workspace.SolverWorkspace` vector) that
        receives the product; with it the update is allocation-free.
        ``work`` must not alias ``x`` or ``y``.
        """
        ax = self.apply(x, out=work)
        return backend_of(ax, y).fma_update(ax, alpha, beta, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._shape
        return (
            f"BatchDia(num_batch={s.num_batch}, shape={s.num_rows}x{s.num_cols}, "
            f"num_diags={self.num_diags})"
        )
