"""``BatchDense`` format and the batched dense (BLAS-1/2) kernels.

The iterative solvers are composed from a small set of batched dense
operations — dot products, AXPYs, norms, scalings — applied to *batch
vectors* of shape ``(num_batch, num_rows)``.  In the reference GPU
implementation these are the specialised, tuned ``BatchDense`` kernels that
get inlined into the fused solver kernel; here they are thin, allocation-free
NumPy wrappers that the solvers call with preallocated outputs.

All functions operate along the last axis and broadcast per-system scalars
of shape ``(num_batch,)``.
"""

from __future__ import annotations

from ..utils.validation import as_value_array
from .backend import backend_of, host as np
from .types import DTYPE, BatchShape, DimensionMismatch, InvalidFormatError

__all__ = [
    "BatchDense",
    "batch_dot",
    "batch_norm2",
    "batch_axpy",
    "batch_scale",
    "batch_copy",
]


class BatchDense:
    """A batch of dense matrices with identical dimensions.

    Parameters
    ----------
    values:
        Array of shape ``(num_batch, num_rows, num_cols)``; copied only when
        a dtype/contiguity conversion is required.

    Notes
    -----
    This is both a matrix format in its own right (usable with every solver
    via the generic SpMV dispatch in :mod:`repro.core.spmv`) and the storage
    baseline against which the paper compares the sparse formats' footprint
    (Fig. 3).
    """

    format_name = "dense"

    def __init__(self, values: np.ndarray):
        values = as_value_array(values, "values", ndim=3)
        self._values = values
        self._shape = BatchShape(*values.shape)

    # -- attributes ------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """Per-entry dense values, shape ``(num_batch, num_rows, num_cols)``."""
        return self._values

    @property
    def dtype(self) -> np.dtype:
        """Value dtype of the stored entries (float32 or float64)."""
        return self._values.dtype

    @property
    def shape(self) -> BatchShape:
        """Batch dimensions."""
        return self._shape

    @property
    def num_batch(self) -> int:
        return self._shape.num_batch

    @property
    def num_rows(self) -> int:
        return self._shape.num_rows

    @property
    def num_cols(self) -> int:
        return self._shape.num_cols

    @property
    def nnz_per_system(self) -> int:
        """Stored entries per batch entry (all of them, for dense)."""
        return self.num_rows * self.num_cols

    def storage_bytes(self) -> int:
        """Total bytes required to store the batch (Fig. 3 accounting)."""
        return self._values.nbytes

    # -- construction helpers --------------------------------------------

    @classmethod
    def from_matrices(cls, matrices) -> "BatchDense":
        """Stack an iterable of equally-shaped 2-D arrays into a batch."""
        mats = [np.asarray(m, dtype=DTYPE) for m in matrices]
        if not mats:
            raise InvalidFormatError("cannot build a BatchDense from zero matrices")
        first = mats[0].shape
        if any(m.shape != first for m in mats):
            raise DimensionMismatch("all matrices in a batch must share a shape")
        if len(first) != 2:
            raise InvalidFormatError("batch entries must be 2-D matrices")
        return cls(np.stack(mats, axis=0))

    @classmethod
    def identity(cls, num_batch: int, num_rows: int) -> "BatchDense":
        """Batch of identity matrices."""
        eye = np.eye(num_rows, dtype=DTYPE)
        return cls(np.broadcast_to(eye, (num_batch, num_rows, num_rows)).copy())

    # -- element access ---------------------------------------------------

    def entry(self, batch_index: int) -> np.ndarray:
        """Dense matrix of one batch entry (a view)."""
        return self._values[batch_index]

    def entry_dense(self, batch_index: int) -> np.ndarray:
        """Dense matrix of one batch entry (copy, format-generic name)."""
        return self._values[batch_index].copy()

    def diagonal(self) -> np.ndarray:
        """Per-system main diagonals, shape ``(num_batch, min(n, m))``."""
        n = min(self.num_rows, self.num_cols)
        bk = backend_of(self._values)
        if bk.is_host:
            return np.ascontiguousarray(
                np.einsum("bii->bi", self._values[:, :n, :n])
            )
        return bk.xp.einsum("bii->bi", self._values[:, :n, :n])

    def to_dense(self) -> "BatchDense":
        """Return self (identity conversion)."""
        return self

    def copy(self) -> "BatchDense":
        """Deep copy of the batch."""
        return BatchDense(self._values.copy())

    def astype(self, dtype) -> "BatchDense":
        """Batch with values cast to ``dtype`` (self when already there)."""
        if self._values.dtype == np.dtype(dtype):
            return self
        return BatchDense(self._values.astype(dtype))

    def take_batch(
        self, indices: np.ndarray, *, values_out: np.ndarray | None = None
    ) -> "BatchDense":
        """Gather a sub-batch of systems into a compact batch.

        ``indices`` is an integer index array or boolean mask over the batch
        axis; selected systems keep their values bit-for-bit.  ``values_out``
        is optional preallocated value storage for the gathered sub-batch
        (its leading ``len(indices)`` systems are used), letting repeated
        compaction events skip the per-event allocation.
        """
        indices = np.asarray(indices)
        bk = backend_of(self._values)
        if values_out is not None and bk.is_host:
            if indices.dtype == np.bool_:
                indices = np.flatnonzero(indices)
            dst = values_out[: indices.size]
            np.take(self._values, indices, axis=0, out=dst)
            return BatchDense(dst)
        return BatchDense(bk.take(self._values, indices))

    # -- matrix-vector products -------------------------------------------

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched dense mat-vec ``out[k] = A[k] @ x[k]``.

        ``x`` has shape ``(num_batch, num_cols)``; the result has shape
        ``(num_batch, num_rows)``.
        """
        self._shape.compatible_vector(x, "x")
        return backend_of(self._values, x).dense_matvec(self._values, x, out=out)

    def advanced_apply(
        self,
        alpha: float | np.ndarray,
        x: np.ndarray,
        beta: float | np.ndarray,
        y: np.ndarray,
        *,
        work: np.ndarray | None = None,
    ) -> np.ndarray:
        """In-place fused ``y[k] = alpha*A[k]@x[k] + beta*y[k]`` (batched GEMV).

        ``work`` is an optional ``(num_batch, num_rows)`` scratch buffer
        that receives the product; with it the update is allocation-free.
        ``work`` must not alias ``x`` or ``y``.
        """
        self._shape.compatible_vector(x, "x")
        bk = backend_of(self._values, x, y)
        ax = bk.dense_matvec_acc(self._values, x, work=work)
        return bk.fma_update(ax, alpha, beta, y)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self._shape
        return f"BatchDense(num_batch={s.num_batch}, shape={s.num_rows}x{s.num_cols})"


# ---------------------------------------------------------------------------
# Batched BLAS-1 kernels operating on (num_batch, n) batch vectors.
# ---------------------------------------------------------------------------

def batch_dot(
    a: np.ndarray,
    b: np.ndarray,
    out: np.ndarray | None = None,
    *,
    dtype=None,
) -> np.ndarray:
    """Per-system dot products: ``out[k] = a[k] . b[k]``.

    Both inputs have shape ``(num_batch, n)``; the result has shape
    ``(num_batch,)``.  ``dtype`` sets the accumulation dtype of the
    reduction — the mixed-precision policy passes float64 here so that
    float32 vectors keep double-precision dot products.
    """
    if a.shape != b.shape:
        raise DimensionMismatch(f"dot operands differ in shape: {a.shape} vs {b.shape}")
    return backend_of(a, b).dot(a, b, out=out, dtype=dtype)


def batch_norm2(
    a: np.ndarray, out: np.ndarray | None = None, *, dtype=None
) -> np.ndarray:
    """Per-system Euclidean norms: ``out[k] = ||a[k]||_2``.

    ``dtype`` sets the accumulation dtype of the squared sum (see
    :func:`batch_dot`).
    """
    return backend_of(a).norm2(a, out=out, dtype=dtype)


def batch_axpy(alpha: float | np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """In-place batched AXPY: ``y[k] += alpha[k] * x[k]``.

    ``alpha`` may be a scalar or a per-system vector of shape
    ``(num_batch,)``.
    """
    if x.shape != y.shape:
        raise DimensionMismatch(f"axpy operands differ in shape: {x.shape} vs {y.shape}")
    alpha = np.asarray(alpha, dtype=y.dtype)
    if alpha.ndim == 1:
        alpha = alpha[:, None]
    if backend_of(x, y).is_host:
        y += alpha * x
        return y
    return y + alpha * x


def batch_scale(alpha: float | np.ndarray, x: np.ndarray) -> np.ndarray:
    """In-place batched scaling: ``x[k] *= alpha[k]``."""
    alpha = np.asarray(alpha, dtype=x.dtype)
    if alpha.ndim == 1:
        alpha = alpha[:, None]
    if backend_of(x).is_host:
        x *= alpha
        return x
    return x * alpha


def batch_copy(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Copy one batch vector into another (shape-checked)."""
    if src.shape != dst.shape:
        raise DimensionMismatch(f"copy operands differ in shape: {src.shape} vs {dst.shape}")
    return backend_of(dst).copyto(dst, src)
