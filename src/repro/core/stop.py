"""Per-system stopping criteria for the batched iterative solvers.

The paper integrates "a simple but customizable stopping criterion for the
residual norm", with two concrete policies:

* an **absolute** residual threshold (``||r_k|| < tau``) — used for every
  XGC result (``tau = 1e-10``), and
* a **relative** residual-reduction factor (``||r_k|| < tau * ||r_0||``).

A criterion is *vectorised over the batch*: ``check`` takes the current
per-system residual norms and returns a boolean mask of systems that have
converged, enabling system-individual termination.
"""

from __future__ import annotations

import numpy as np

from ..utils.validation import check_non_negative

__all__ = [
    "StoppingCriterion",
    "AbsoluteResidual",
    "RelativeResidual",
    "CombinedCriterion",
    "make_criterion",
]


class StoppingCriterion:
    """Abstract per-system residual-based stopping criterion."""

    name = "abstract"

    def initialize(self, rhs_norms: np.ndarray, initial_res_norms: np.ndarray) -> None:
        """Record per-system reference norms before iteration starts.

        Parameters
        ----------
        rhs_norms:
            ``||b[k]||`` per system.
        initial_res_norms:
            ``||b[k] - A[k] x0[k]||`` per system.
        """

    def check(self, res_norms: np.ndarray) -> np.ndarray:
        """Return a per-system boolean mask of converged systems."""
        raise NotImplementedError

    def thresholds(self) -> np.ndarray:
        """Per-system absolute thresholds currently in force."""
        raise NotImplementedError

    def restrict(self, indices: np.ndarray) -> "StoppingCriterion | None":
        """A criterion view for the sub-batch selected by ``indices``.

        Used by active-batch compaction: the restricted criterion must make
        bit-identical decisions for the selected systems.  Returns ``None``
        when a subclass cannot be restricted (compaction is then skipped).
        """
        return None


class AbsoluteResidual(StoppingCriterion):
    """Converged when ``||r_k|| < tol`` (paper default, tol = 1e-10)."""

    name = "absolute"

    def __init__(self, tol: float = 1e-10) -> None:
        check_non_negative(tol, "tol")
        self.tol = float(tol)
        self._num_batch: int | None = None

    def initialize(self, rhs_norms: np.ndarray, initial_res_norms: np.ndarray) -> None:
        self._num_batch = rhs_norms.shape[0]

    def check(self, res_norms: np.ndarray) -> np.ndarray:
        return res_norms < self.tol

    def thresholds(self) -> np.ndarray:
        if self._num_batch is None:
            raise RuntimeError("criterion used before initialize()")
        return np.full(self._num_batch, self.tol)

    def restrict(self, indices: np.ndarray) -> "AbsoluteResidual":
        sub = AbsoluteResidual(self.tol)
        if self._num_batch is not None:
            idx = np.asarray(indices)
            sub._num_batch = (
                int(np.count_nonzero(idx)) if idx.dtype == bool else int(idx.shape[0])
            )
        return sub


class RelativeResidual(StoppingCriterion):
    """Converged when ``||r_k|| < factor * ||r_0||`` per system.

    Systems whose initial residual is already zero are treated as converged
    immediately (threshold 0).
    """

    name = "relative"

    def __init__(self, factor: float = 1e-8) -> None:
        check_non_negative(factor, "factor")
        self.factor = float(factor)
        self._thresholds: np.ndarray | None = None

    def initialize(self, rhs_norms: np.ndarray, initial_res_norms: np.ndarray) -> None:
        self._thresholds = self.factor * initial_res_norms

    def check(self, res_norms: np.ndarray) -> np.ndarray:
        if self._thresholds is None:
            raise RuntimeError("criterion used before initialize()")
        return res_norms <= self._thresholds

    def thresholds(self) -> np.ndarray:
        if self._thresholds is None:
            raise RuntimeError("criterion used before initialize()")
        return self._thresholds

    def restrict(self, indices: np.ndarray) -> "RelativeResidual | None":
        if self._thresholds is None:
            return None
        sub = RelativeResidual(self.factor)
        sub._thresholds = self._thresholds[np.asarray(indices)]
        return sub


class CombinedCriterion(StoppingCriterion):
    """OR-combination of several criteria (any one satisfied => converged)."""

    name = "combined"

    def __init__(self, *criteria: StoppingCriterion) -> None:
        if not criteria:
            raise ValueError("CombinedCriterion needs at least one criterion")
        self.criteria = tuple(criteria)

    def initialize(self, rhs_norms: np.ndarray, initial_res_norms: np.ndarray) -> None:
        for c in self.criteria:
            c.initialize(rhs_norms, initial_res_norms)

    def check(self, res_norms: np.ndarray) -> np.ndarray:
        mask = self.criteria[0].check(res_norms)
        for c in self.criteria[1:]:
            mask = mask | c.check(res_norms)
        return mask

    def thresholds(self) -> np.ndarray:
        # The effective threshold is the loosest (max) of the components.
        return np.maximum.reduce([c.thresholds() for c in self.criteria])

    def restrict(self, indices: np.ndarray) -> "CombinedCriterion | None":
        parts = [c.restrict(indices) for c in self.criteria]
        if any(p is None for p in parts):
            return None
        return CombinedCriterion(*parts)


def make_criterion(kind: str, value: float) -> StoppingCriterion:
    """Factory: ``"abs"``/``"absolute"`` or ``"rel"``/``"relative"``."""
    if kind in ("abs", "absolute"):
        return AbsoluteResidual(value)
    if kind in ("rel", "relative"):
        return RelativeResidual(value)
    raise ValueError(f"unknown criterion kind {kind!r}; use 'abs' or 'rel'")
