"""Batched sparse linear algebra — the paper's core contribution.

Public surface:

* Formats: :class:`BatchCsr`, :class:`BatchEll`, :class:`BatchDia`,
  :class:`BatchDense` (shared sparsity pattern, per-system values).
* Kernels: :func:`spmv`, :func:`advanced_spmv`, the batched BLAS-1 helpers.
* Solvers: :func:`make_solver` / :class:`BatchBicgstab` et al., plus the
  direct baselines (:class:`BatchBandedLu`, :class:`BatchBandedQr`).
* Components: preconditioners, stopping criteria, per-system loggers, and
  the §IV-D shared-memory placement planner.
* Precision: :func:`precision_policy` (``fp64`` / ``fp32`` / ``mixed``)
  and :class:`RefinementSolver` for fp64-accurate low-precision solves.
"""

from .backend import (
    NUMPY,
    ArrayBackend,
    BackendUnavailableError,
    JaxBackend,
    NumpyBackend,
    available_backends,
    backend_of,
    get_backend,
    is_device_array,
)
from .batch_csr import BatchCsr
from .batch_dense import (
    BatchDense,
    batch_axpy,
    batch_copy,
    batch_dot,
    batch_norm2,
    batch_scale,
)
from .batch_dia import BatchDia
from .batch_ell import PAD_COL, BatchEll
from .blas import (
    axpby,
    fused_dots,
    fused_update,
    masked_assign,
    masked_axpy,
    masked_fill,
    pipelined_cg_update,
)
from .compaction import BatchCompactor
from .convert import (
    csr_to_dense,
    csr_to_dia,
    csr_to_ell,
    dense_to_csr,
    dense_to_dia,
    dense_to_ell,
    dia_to_csr,
    dia_to_dense,
    dia_to_ell,
    ell_to_csr,
    ell_to_dense,
    ell_to_dia,
    to_format,
)
from .faults import (
    HealthOptions,
    SolverHealth,
    derive_health,
    health_counts,
    summarize_health,
    worst_health,
)
from .logging_ import BatchLogger
from .precision import (
    FP32,
    FP64,
    MIXED,
    PrecisionPolicy,
    policy_for_dtype,
    precision_policy,
)
from .preconditioners import (
    BatchPreconditioner,
    BlockJacobiPreconditioner,
    IdentityPreconditioner,
    Ilu0Preconditioner,
    JacobiPreconditioner,
    make_preconditioner,
)
from .solvers import (
    BatchBandedLu,
    BatchBandedQr,
    BatchDenseLu,
    BatchBicgstab,
    BatchThomas,
    BatchTridiag,
    BatchCg,
    BatchCgs,
    BatchGmres,
    BatchPipelinedBicgstab,
    BatchPipelinedCg,
    BatchRichardson,
    EscalationReport,
    EscalationSolver,
    RefinementSolver,
    MonolithicBlockSolver,
    assemble_block_diagonal,
    banded_lu_solve,
    banded_qr_solve,
    dense_lu_solve,
    extract_tridiagonal,
    make_solver,
    thomas_solve,
)
from .scaling import ScaledSystem, row_scaling, symmetric_scaling
from .spmv import BatchMatrix, advanced_spmv, residual, spmv
from .stop import (
    AbsoluteResidual,
    CombinedCriterion,
    RelativeResidual,
    StoppingCriterion,
    make_criterion,
)
from .types import (
    DTYPE,
    INDEX_DTYPE,
    BatchShape,
    ConvergenceError,
    DimensionMismatch,
    InvalidFormatError,
    SolveResult,
)
from .workspace import (
    SolverWorkspace,
    StorageConfig,
    VectorSpec,
    plan_storage,
    solver_vector_specs,
)

__all__ = [
    # backends
    "ArrayBackend",
    "NumpyBackend",
    "JaxBackend",
    "NUMPY",
    "BackendUnavailableError",
    "get_backend",
    "backend_of",
    "available_backends",
    "is_device_array",
    # formats
    "BatchCsr",
    "BatchEll",
    "BatchDia",
    "BatchDense",
    "PAD_COL",
    # kernels
    "spmv",
    "advanced_spmv",
    "residual",
    "BatchMatrix",
    "batch_dot",
    "batch_norm2",
    "batch_axpy",
    "batch_scale",
    "batch_copy",
    "axpby",
    "fused_dots",
    "fused_update",
    "masked_assign",
    "pipelined_cg_update",
    "masked_axpy",
    "masked_fill",
    "BatchCompactor",
    # conversions
    "to_format",
    "csr_to_ell",
    "ell_to_csr",
    "csr_to_dense",
    "ell_to_dense",
    "dense_to_csr",
    "dense_to_ell",
    "csr_to_dia",
    "dia_to_csr",
    "ell_to_dia",
    "dia_to_ell",
    "dia_to_dense",
    "dense_to_dia",
    # solvers
    "make_solver",
    "BatchBicgstab",
    "BatchCg",
    "BatchCgs",
    "BatchGmres",
    "BatchPipelinedBicgstab",
    "BatchPipelinedCg",
    "BatchRichardson",
    "RefinementSolver",
    "EscalationSolver",
    "EscalationReport",
    "BatchBandedLu",
    "BatchBandedQr",
    "BatchDenseLu",
    "dense_lu_solve",
    "banded_lu_solve",
    "banded_qr_solve",
    "BatchThomas",
    "BatchTridiag",
    "thomas_solve",
    "extract_tridiagonal",
    "MonolithicBlockSolver",
    "assemble_block_diagonal",
    # scaling
    "ScaledSystem",
    "row_scaling",
    "symmetric_scaling",
    # components
    "BatchPreconditioner",
    "IdentityPreconditioner",
    "JacobiPreconditioner",
    "BlockJacobiPreconditioner",
    "Ilu0Preconditioner",
    "make_preconditioner",
    "StoppingCriterion",
    "AbsoluteResidual",
    "RelativeResidual",
    "CombinedCriterion",
    "make_criterion",
    "BatchLogger",
    # health / robustness
    "SolverHealth",
    "HealthOptions",
    "health_counts",
    "worst_health",
    "summarize_health",
    "derive_health",
    # precision
    "PrecisionPolicy",
    "precision_policy",
    "policy_for_dtype",
    "FP64",
    "FP32",
    "MIXED",
    "SolverWorkspace",
    "StorageConfig",
    "VectorSpec",
    "plan_storage",
    "solver_vector_specs",
    # types
    "DTYPE",
    "INDEX_DTYPE",
    "BatchShape",
    "SolveResult",
    "DimensionMismatch",
    "ConvergenceError",
    "InvalidFormatError",
]
