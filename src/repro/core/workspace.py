"""Solver workspace vectors and the shared-memory placement policy (§IV-D).

Two related concerns live here:

1. :class:`SolverWorkspace` — host-side preallocation of the auxiliary batch
   vectors a solver needs, so that repeated solves (e.g. the five linear
   solves inside one Picard loop) perform **zero** allocations after the
   first.  This is the guide-recommended preallocate-and-reuse idiom.

2. :func:`plan_storage` — the *automatic shared-memory configuration* of the
   paper: given the per-CU shared-memory budget, decide which solver vectors
   live in fast local shared memory and which spill to global HBM.  Vectors
   involved in matrix-vector products ("red" in Algorithm 1: ``p_hat, v,
   s_hat, t``) are placed first; other intermediates ("blue": ``r, r_hat, p,
   s, x``) fill whatever space remains.  The resulting
   :class:`StorageConfig` mirrors the struct of integers the CUDA kernel
   receives and feeds the GPU memory-traffic model.

The paper reports that on the V100 this policy places 6 of BiCGStab's 9
vectors in shared memory; the planner reproduces that outcome with the V100
budget (48 KiB per block, i.e. two resident blocks per 96 KiB CU).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .backend import get_backend, host as np
from .types import DTYPE

__all__ = [
    "VectorSpec",
    "StorageConfig",
    "SolverWorkspace",
    "solver_vector_specs",
    "plan_storage",
]


@dataclass(frozen=True)
class VectorSpec:
    """One auxiliary solver vector and its placement priority.

    Attributes
    ----------
    name:
        Vector identifier (matches Algorithm 1's symbol names).
    role:
        ``"spmv"`` for vectors read/written by the SpMV kernel (highest
        placement priority — red in Algorithm 1), ``"aux"`` for the other
        intermediates (blue).
    touches:
        Average read/write passes over the vector per solver iteration;
        spilled vectors pay this many global-memory passes in the traffic
        model (:func:`repro.gpu.kernel.iteration_work`).
    """

    name: str
    role: str
    touches: float = 2.0

    def __post_init__(self) -> None:
        if self.role not in ("spmv", "aux"):
            raise ValueError(f"role must be 'spmv' or 'aux', got {self.role!r}")
        if self.touches <= 0.0:
            raise ValueError(f"touches must be positive, got {self.touches}")


def solver_vector_specs(solver: str, *, gmres_restart: int = 30) -> tuple[VectorSpec, ...]:
    """Vector specs for a named solver, from its declared operation schedule.

    GMRES is parameterised by its restart length: it keeps the ``m + 1``
    Krylov basis vectors (all SpMV operands) plus residual and solution.
    The specs come from the same :class:`~repro.core.solvers.schedule.
    OpSchedule` registry the host solvers and the GPU model read, so the
    placement planner can never drift from what the solvers allocate.
    """
    from .solvers.schedule import solver_schedule

    return solver_schedule(solver, gmres_restart=gmres_restart).vectors


@dataclass(frozen=True)
class StorageConfig:
    """Outcome of the shared-memory placement decision for one kernel.

    Frozen (and therefore hashable): placements are value objects, cached
    by the GPU model's memoized work builders and embedded in hashable
    :class:`~repro.gpu.tuning.TuningDecision` records.

    Attributes
    ----------
    shared_vectors:
        Names of vectors resident in CU-local shared memory.
    global_vectors:
        Names of vectors spilled to global device memory.
    vector_bytes:
        Size of one vector for one system, in bytes.
    shared_bytes_used:
        Shared memory the kernel will request per thread block.
    budget_bytes:
        The per-block shared-memory budget the planner worked against.
    """

    shared_vectors: tuple[str, ...]
    global_vectors: tuple[str, ...]
    vector_bytes: int
    shared_bytes_used: int
    budget_bytes: int

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key order, plain types)."""
        return {
            "shared_vectors": list(self.shared_vectors),
            "global_vectors": list(self.global_vectors),
            "vector_bytes": int(self.vector_bytes),
            "shared_bytes_used": int(self.shared_bytes_used),
            "budget_bytes": int(self.budget_bytes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StorageConfig":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            shared_vectors=tuple(data["shared_vectors"]),
            global_vectors=tuple(data["global_vectors"]),
            vector_bytes=int(data["vector_bytes"]),
            shared_bytes_used=int(data["shared_bytes_used"]),
            budget_bytes=int(data["budget_bytes"]),
        )

    @property
    def num_shared(self) -> int:
        """Count of vectors placed in shared memory."""
        return len(self.shared_vectors)

    @property
    def num_global(self) -> int:
        """Count of vectors spilled to global memory."""
        return len(self.global_vectors)

    @property
    def num_vectors(self) -> int:
        """Total auxiliary vectors the solver uses."""
        return self.num_shared + self.num_global


def plan_storage(
    vectors: Sequence[VectorSpec],
    num_rows: int,
    shared_budget_bytes: int,
    *,
    value_bytes: int = 8,
) -> StorageConfig:
    """Assign solver vectors to shared or global memory (§IV-D policy).

    SpMV-operand vectors are placed first (they dominate traffic because
    SpMVs account for most of the solve time), then the remaining
    intermediates, until the budget is exhausted.  Within a priority class
    the declaration order is preserved, matching the deterministic placement
    of the reference implementation.
    """
    if num_rows < 1:
        raise ValueError(f"num_rows must be >= 1, got {num_rows}")
    if shared_budget_bytes < 0:
        raise ValueError("shared_budget_bytes must be >= 0")
    vec_bytes = num_rows * value_bytes
    ordered = [v for v in vectors if v.role == "spmv"] + [
        v for v in vectors if v.role == "aux"
    ]
    shared: list[str] = []
    global_: list[str] = []
    used = 0
    for spec in ordered:
        if used + vec_bytes <= shared_budget_bytes:
            shared.append(spec.name)
            used += vec_bytes
        else:
            global_.append(spec.name)
    return StorageConfig(
        shared_vectors=tuple(shared),
        global_vectors=tuple(global_),
        vector_bytes=vec_bytes,
        shared_bytes_used=used,
        budget_bytes=int(shared_budget_bytes),
    )


class SolverWorkspace:
    """Preallocated pool of ``(num_batch, num_rows)`` batch vectors.

    Vectors are created lazily on first request and reused afterwards; a
    workspace survives across repeated solves of equally-sized batches so
    the inner Picard solves allocate nothing.
    """

    def __init__(
        self,
        num_batch: int,
        num_rows: int,
        *,
        dtype=DTYPE,
        scalar_dtype=None,
        backend=None,
    ) -> None:
        if num_batch < 1 or num_rows < 1:
            raise ValueError("workspace dimensions must be positive")
        self.num_batch = int(num_batch)
        self.num_rows = int(num_rows)
        #: Working precision of the batch vectors (the streamed data).
        self.dtype = np.dtype(dtype)
        #: Dtype of per-system scalars — reduction results live here, so
        #: the mixed policy passes float64 while vectors stay float32.
        self.scalar_dtype = np.dtype(scalar_dtype if scalar_dtype is not None else dtype)
        #: Execution backend the batch vectors live on.  Per-system scalar
        #: arrays always stay host NumPy regardless of backend.
        self.backend = get_backend(backend)
        self._vectors: dict[str, np.ndarray] = {}
        self._scalars: dict[str, np.ndarray] = {}

    def matches(self, num_batch: int, num_rows: int, dtype=None, backend=None) -> bool:
        """Whether this workspace fits the given dimensions (and dtype/backend)."""
        if dtype is not None and self.dtype != np.dtype(dtype):
            return False
        if backend is not None and self.backend is not get_backend(backend):
            return False
        return self.num_batch == num_batch and self.num_rows == num_rows

    def vector(self, name: str, *, zero: bool = False) -> np.ndarray:
        """A named ``(num_batch, num_rows)`` vector; optionally zeroed.

        On device backends the cached array is returned as-is: device
        arrays are immutable, so callers treat every workspace vector as
        scratch to rebind, and the cached zeros stay zeros forever.
        """
        arr = self._vectors.get(name)
        if arr is None:
            arr = self.backend.zeros((self.num_batch, self.num_rows), self.dtype)
            self._vectors[name] = arr
        elif zero and self.backend.is_host:
            arr[...] = 0.0
        return arr

    def scalar(self, name: str, *, fill: float | None = None) -> np.ndarray:
        """A named ``(num_batch,)`` per-system scalar array."""
        arr = self._scalars.get(name)
        if arr is None:
            arr = np.zeros(self.num_batch, dtype=self.scalar_dtype)
            self._scalars[name] = arr
        if fill is not None:
            arr[...] = fill
        return arr

    @property
    def allocated_vectors(self) -> int:
        """Number of distinct vectors currently allocated."""
        return len(self._vectors)

    def allocated_bytes(self) -> int:
        """Total bytes held by the workspace."""
        return sum(a.nbytes for a in self._vectors.values()) + sum(
            a.nbytes for a in self._scalars.values()
        )
