"""Array-backend seam: pluggable NumPy/JAX execution for the hot layers.

The batched formats, the BLAS-1 helpers, the solver driver, and the XGC
entry points never touch an array library directly — they go through an
:class:`ArrayBackend`.  The seam follows Ginkgo's executor pattern: every
array primitive the hot path needs (creation, einsum/dot reductions with
an accumulate dtype, ``take``/slicing, masked updates, the four SpMV
kernels) is concentrated behind one interface so the same solver code
runs under either backend.

Two backends are provided:

``NumpyBackend``
    The default.  Its methods are *verbatim* the NumPy statements the
    kernels used before the seam existed — same ufunc calls, same
    ``out=``/``where=`` semantics, same operand order — so the fp64
    NumPy path stays bit-identical to the golden pins.

``JaxBackend``
    Optional, lazily imported, jit-wrapped hot paths.  JAX arrays are
    immutable, so every "in-place" primitive has a functional fallback:
    it returns the updated array and callers rebind
    (``st.r = bk.subtract(st.r, work, out=st.r)``).  The NumPy
    implementations *also* return their destination, so the same calling
    convention covers both backends.  ``jax_enable_x64`` is switched on
    at construction: the conformance contract is fp64 agreement with
    NumPy to 1e-12 on the n=992 stencil.

Host/device split
-----------------
Only the ``(num_batch, num_rows)`` batch vectors and the matrix values
live on the backend.  Per-system scalars, boolean activity masks, health
codes, stopping criteria, and the sparsity *pattern* arrays (row
pointers, column indices, diagonal offsets) stay host NumPy — exactly
like the paper's GPU implementation keeps convergence control on the
host.  All reduction primitives (``dot``/``norm2``) therefore return
host arrays.  Hot modules that still need host control-flow math import
the host namespace from here (``from .backend import host as np``) so
the seam is the single entry point for array libraries.
"""

from __future__ import annotations

import importlib.util

import numpy as np

#: The host array namespace.  Hot-path modules import this instead of
#: ``numpy`` directly (``from .backend import host as np``): host-side
#: control flow (masks, per-system scalars, pattern math) is part of the
#: seam's contract, and routing the import through here keeps the seam
#: the only place an array library is named.
host = np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "JaxBackend",
    "NUMPY",
    "NumpyBackend",
    "available_backends",
    "backend_of",
    "get_backend",
    "host",
    "is_device_array",
]


class BackendUnavailableError(RuntimeError):
    """Requested backend's array library is not importable."""


def _per_system(coeff):
    """Host per-system coefficient, broadcastable over ``(nb, n)``."""
    coeff = np.asarray(coeff)
    if coeff.ndim == 1:
        return coeff[:, None]
    return coeff


def _expand_mask(mask, dst):
    """Reshape a ``(num_batch,)`` mask to broadcast against ``dst``."""
    if mask.ndim == dst.ndim:
        return mask
    return mask.reshape(mask.shape + (1,) * (dst.ndim - mask.ndim))


class ArrayBackend:
    """Protocol of array primitives the hot layers are written against.

    Every method that updates an array **returns the updated array**;
    under NumPy that is the mutated destination itself (zero-copy),
    under JAX a new array.  Callers always rebind the result.
    """

    #: Registry name ("numpy", "jax").
    name: str = "abstract"
    #: True when arrays are host numpy (mutable, zero-copy views).
    is_host: bool = False
    #: The backend's array namespace (numpy / jax.numpy).
    xp = None

    # -- creation / movement ------------------------------------------
    def zeros(self, shape, dtype):
        raise NotImplementedError

    def asarray(self, data, dtype=None):
        raise NotImplementedError

    def to_host(self, a):
        """Host numpy view/copy of a backend array."""
        raise NotImplementedError

    def to_host_copy(self, a):
        """Host numpy array owning its data (safe to return to callers)."""
        raise NotImplementedError

    def fill(self, dst, value):
        raise NotImplementedError

    def copyto(self, dst, src):
        raise NotImplementedError

    # -- elementwise ---------------------------------------------------
    def add(self, a, b, out=None):
        raise NotImplementedError

    def subtract(self, a, b, out=None):
        raise NotImplementedError

    def multiply(self, a, b, out=None):
        raise NotImplementedError

    def masked_add(self, y, upd, mask):
        """``y[mask] += upd[mask]`` with a per-system mask."""
        raise NotImplementedError

    # -- reductions (always host results) ------------------------------
    def dot(self, a, b, out=None, dtype=None):
        """Per-system dot ``sum_i a[b,i] * b[b,i]`` accumulated in ``dtype``."""
        raise NotImplementedError

    def norm2(self, a, out=None, dtype=None):
        """Per-system Euclidean norm accumulated in ``dtype``."""
        raise NotImplementedError

    # -- gather / scatter ----------------------------------------------
    def take(self, src, indices, out=None):
        """Gather leading-axis rows.  ``out`` is a host fast path only."""
        raise NotImplementedError

    def at_set(self, arr, key, src):
        """``arr[key] = src`` (functional under JAX)."""
        raise NotImplementedError

    # -- masked updates ------------------------------------------------
    def masked_assign(self, dst, src, mask):
        raise NotImplementedError

    def masked_fill(self, dst, value, mask):
        raise NotImplementedError

    def masked_axpy(self, y, alpha, x, mask=None, work=None):
        raise NotImplementedError

    def axpby(self, alpha, x, beta, y, out=None, work=None):
        raise NotImplementedError

    def fused_update(self, p, r, beta, omega, v, work=None):
        """``p = r + beta * (p - omega * v)``."""
        raise NotImplementedError

    def pipelined_cg_update(self, p, s, u, w, x, r, alpha, beta, work=None):
        """Fused pipelined-CG four-vector update; returns ``(p, s, x, r)``."""
        raise NotImplementedError

    def fma_update(self, ax, alpha, beta, y):
        """``y = beta * y + alpha * ax`` (the advanced-SpMV tail)."""
        raise NotImplementedError

    # -- format kernels ------------------------------------------------
    def csr_spmv(self, row_ptrs, col_idxs, values, x, out=None):
        raise NotImplementedError

    def ell_spmv(self, gather_cols, values, x, out=None):
        raise NotImplementedError

    def dia_spmv(self, spans, values, x, out=None, scratch=None):
        raise NotImplementedError

    def dense_matvec(self, values, x, out=None):
        raise NotImplementedError

    def dense_matvec_acc(self, values, x, work=None):
        """Dense matvec written directly into ``work`` when given."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """Default host backend — verbatim the pre-seam NumPy statements."""

    name = "numpy"
    is_host = True
    xp = np

    # -- creation / movement ------------------------------------------
    def zeros(self, shape, dtype):
        return np.zeros(shape, dtype=dtype)

    def asarray(self, data, dtype=None):
        return np.asarray(data, dtype=dtype)

    def to_host(self, a):
        return a

    def to_host_copy(self, a):
        return a.copy()

    def fill(self, dst, value):
        dst[...] = value
        return dst

    def copyto(self, dst, src):
        dst[...] = src
        return dst

    # -- elementwise ---------------------------------------------------
    def add(self, a, b, out=None):
        return np.add(a, b, out=out)

    def subtract(self, a, b, out=None):
        return np.subtract(a, b, out=out)

    def multiply(self, a, b, out=None):
        return np.multiply(a, b, out=out)

    def masked_add(self, y, upd, mask):
        np.add(y, upd, out=y, where=_expand_mask(mask, y))
        return y

    # -- reductions ----------------------------------------------------
    def dot(self, a, b, out=None, dtype=None):
        return np.einsum("bi,bi->b", a, b, out=out, dtype=dtype)

    def norm2(self, a, out=None, dtype=None):
        sq = np.einsum("bi,bi->b", a, a, dtype=dtype)
        if out is None:
            return np.sqrt(sq)
        return np.sqrt(sq, out=out)

    # -- gather / scatter ----------------------------------------------
    def take(self, src, indices, out=None):
        indices = np.asarray(indices)
        if out is None:
            return src[indices]
        if indices.dtype == np.bool_:
            indices = np.flatnonzero(indices)
        gathered = out[: indices.size]
        np.take(src, indices, axis=0, out=gathered)
        return gathered

    def at_set(self, arr, key, src):
        arr[key] = src
        return arr

    # -- masked updates ------------------------------------------------
    def masked_assign(self, dst, src, mask):
        np.copyto(dst, src, where=_expand_mask(mask, dst))
        return dst

    def masked_fill(self, dst, value, mask):
        np.copyto(dst, value, where=_expand_mask(mask, dst))
        return dst

    def masked_axpy(self, y, alpha, x, mask=None, work=None):
        if work is None:
            work = np.empty_like(y)
        np.multiply(x, _per_system(alpha), out=work)
        if mask is None:
            np.add(y, work, out=y)
        else:
            np.add(y, work, out=y, where=_expand_mask(mask, y))
        return y

    def axpby(self, alpha, x, beta, y, out=None, work=None):
        if out is None:
            out = np.empty_like(y)
        if work is None:
            work = np.empty_like(y)
        if out is x:
            np.multiply(y, _per_system(beta), out=work)
            np.multiply(x, _per_system(alpha), out=out)
        else:
            np.multiply(x, _per_system(alpha), out=work)
            np.multiply(y, _per_system(beta), out=out)
        np.add(out, work, out=out)
        return out

    def fused_update(self, p, r, beta, omega, v, work=None):
        if work is None:
            work = np.empty_like(p)
        np.multiply(v, _per_system(omega), out=work)
        np.subtract(p, work, out=p)
        np.multiply(p, _per_system(beta), out=p)
        np.add(p, r, out=p)
        return p

    def pipelined_cg_update(self, p, s, u, w, x, r, alpha, beta, work=None):
        if work is None:
            work = np.empty_like(x)
        a = _per_system(alpha)
        be = _per_system(beta)
        np.multiply(p, be, out=p)
        np.add(p, u, out=p)
        np.multiply(s, be, out=s)
        np.add(s, w, out=s)
        np.multiply(p, a, out=work)
        np.add(x, work, out=x)
        np.multiply(s, a, out=work)
        np.subtract(r, work, out=r)
        return p, s, x, r

    def fma_update(self, ax, alpha, beta, y):
        alpha = np.asarray(alpha, dtype=ax.dtype)
        beta = np.asarray(beta, dtype=y.dtype)
        if alpha.ndim == 1:
            alpha = alpha[:, None]
        if beta.ndim == 1:
            beta = beta[:, None]
        np.multiply(ax, alpha, out=ax)
        np.multiply(y, beta, out=y)
        np.add(y, ax, out=y)
        return y

    # -- format kernels ------------------------------------------------
    def csr_spmv(self, row_ptrs, col_idxs, values, x, out=None):
        num_batch, nnz = values.shape
        num_rows = row_ptrs.shape[0] - 1
        gathered = x[:, col_idxs]
        gathered *= values
        if out is None:
            out = np.empty((num_batch, num_rows), dtype=values.dtype)
        if nnz == 0:
            out[...] = 0.0
            return out
        # Per-row segment reduction with reduceat: each row is summed
        # independently (no cross-row accumulation, so rows of wildly
        # different magnitude cannot contaminate each other — a global
        # prefix sum would).  A zero sentinel keeps trailing empty rows'
        # start index (== nnz) in bounds; reduceat returns the element at
        # `start` for empty segments, which the mask then zeroes.
        padded = np.empty((num_batch, nnz + 1), dtype=gathered.dtype)
        padded[:, :nnz] = gathered
        padded[:, nnz] = 0.0
        starts = row_ptrs[:-1].astype(np.int64)
        out[...] = np.add.reduceat(padded, starts, axis=1)
        empty = np.diff(row_ptrs) == 0
        if np.any(empty):
            out[:, empty] = 0.0
        return out

    def ell_spmv(self, gather_cols, values, x, out=None):
        num_batch = values.shape[0]
        num_rows = values.shape[2]
        if out is None:
            out = np.zeros((num_batch, num_rows), dtype=values.dtype)
        else:
            out[...] = 0.0
        for k in range(values.shape[1]):
            out += values[:, k, :] * x[:, gather_cols[k]]
        return out

    def dia_spmv(self, spans, values, x, out=None, scratch=None):
        num_batch = values.shape[0]
        num_rows = values.shape[2]
        if out is None:
            out = np.zeros((num_batch, num_rows), dtype=values.dtype)
        else:
            out[...] = 0.0
        if scratch is None:
            scratch = np.empty((num_batch, max(num_rows, x.shape[1])), dtype=values.dtype)
        for k, d, lo, hi in spans:
            if lo >= hi:
                continue
            w = scratch[:, : hi - lo]
            np.multiply(values[:, k, lo:hi], x[:, lo + d : hi + d], out=w)
            seg = out[:, lo:hi]
            np.add(seg, w, out=seg)
        return out

    def dense_matvec(self, values, x, out=None):
        y = np.einsum("bij,bj->bi", values, x, optimize=True)
        if out is None:
            return y
        out[...] = y
        return out

    def dense_matvec_acc(self, values, x, work=None):
        return np.einsum("bij,bj->bi", values, x, optimize=True, out=work)


class JaxBackend(ArrayBackend):
    """Optional jit-compiled backend over ``jax.numpy`` (lazy import)."""

    name = "jax"
    is_host = False

    def __init__(self):
        try:
            import jax
        except ImportError as exc:  # pragma: no cover - exercised w/o jax
            raise BackendUnavailableError(
                "the 'jax' backend requires JAX (pip install \"jax[cpu]\")"
            ) from exc
        # fp64 throughout: the conformance contract is 1e-12 agreement
        # with the NumPy fp64 path on the n=992 stencil.
        jax.config.update("jax_enable_x64", True)
        import jax.numpy as jnp

        self._jax = jax
        self.xp = jnp
        self._jit: dict = {}
        # Pattern-derived device constants, keyed by the identity of the
        # (immutable, matrix-lifetime) host pattern arrays.
        self._patterns: dict = {}

    # -- jit plumbing --------------------------------------------------
    def _jitted(self, key, factory):
        fn = self._jit.get(key)
        if fn is None:
            fn = self._jax.jit(factory())
            self._jit[key] = fn
        return fn

    def _pattern(self, key, anchor, build):
        ent = self._patterns.get(key)
        if ent is None or ent[0] is not anchor:
            ent = (anchor, build())
            self._patterns[key] = ent
        return ent[1]

    # -- creation / movement ------------------------------------------
    def zeros(self, shape, dtype):
        return self.xp.zeros(shape, dtype=dtype)

    def asarray(self, data, dtype=None):
        return self.xp.asarray(data, dtype=dtype)

    def to_host(self, a):
        return np.asarray(a)

    def to_host_copy(self, a):
        return np.asarray(a)

    def fill(self, dst, value):
        return self.xp.full(dst.shape, value, dtype=dst.dtype)

    def copyto(self, dst, src):
        src = self.xp.asarray(src, dtype=dst.dtype)
        if src.shape != dst.shape:
            src = self.xp.broadcast_to(src, dst.shape)
        return src

    # -- elementwise ---------------------------------------------------
    def add(self, a, b, out=None):
        return self.xp.add(a, b)

    def subtract(self, a, b, out=None):
        return self.xp.subtract(a, b)

    def multiply(self, a, b, out=None):
        return self.xp.multiply(a, b)

    def masked_add(self, y, upd, mask):
        return self.xp.where(_expand_mask(mask, y), y + upd, y)

    # -- reductions ----------------------------------------------------
    def _dot_device(self, a, b, dtype=None):
        fn = self._jitted(
            ("dot", np.dtype(dtype).name if dtype is not None else None),
            lambda: (
                (lambda u, v: self.xp.einsum("bi,bi->b", u, v))
                if dtype is None
                else (
                    lambda u, v: self.xp.einsum(
                        "bi,bi->b", u, v, preferred_element_type=np.dtype(dtype)
                    )
                )
            ),
        )
        return fn(a, b)

    def dot(self, a, b, out=None, dtype=None):
        res = np.asarray(self._dot_device(a, b, dtype=dtype))
        if out is None:
            return res
        out[...] = res
        return out

    def norm2(self, a, out=None, dtype=None):
        sq = np.asarray(self._dot_device(a, a, dtype=dtype))
        if out is None:
            return np.sqrt(sq)
        return np.sqrt(sq, out=out)

    # -- gather / scatter ----------------------------------------------
    def take(self, src, indices, out=None):
        indices = np.asarray(indices)
        if indices.dtype == np.bool_:
            indices = np.flatnonzero(indices)
        return self.xp.take(src, self.xp.asarray(indices), axis=0)

    def at_set(self, arr, key, src):
        return arr.at[key].set(src)

    # -- masked updates ------------------------------------------------
    def masked_assign(self, dst, src, mask):
        return self.xp.where(_expand_mask(mask, dst), src, dst)

    def masked_fill(self, dst, value, mask):
        return self.xp.where(_expand_mask(mask, dst), value, dst)

    def masked_axpy(self, y, alpha, x, mask=None, work=None):
        upd = y + x * _per_system(np.asarray(alpha, dtype=y.dtype))
        if mask is None:
            return upd
        return self.xp.where(_expand_mask(mask, y), upd, y)

    def axpby(self, alpha, x, beta, y, out=None, work=None):
        return x * _per_system(alpha) + y * _per_system(beta)

    def fused_update(self, p, r, beta, omega, v, work=None):
        fn = self._jitted(
            ("fused_update",),
            lambda: (lambda p, r, be, om, v: (p - om * v) * be + r),
        )
        return fn(p, r, _per_system(beta), _per_system(omega), v)

    def pipelined_cg_update(self, p, s, u, w, x, r, alpha, beta, work=None):
        def factory():
            def kernel(p, s, u, w, x, r, a, be):
                p = p * be + u
                s = s * be + w
                x = x + p * a
                r = r - s * a
                return p, s, x, r

            return kernel

        fn = self._jitted(("pipelined_cg_update",), factory)
        return fn(p, s, u, w, x, r, _per_system(alpha), _per_system(beta))

    def fma_update(self, ax, alpha, beta, y):
        alpha = np.asarray(alpha, dtype=ax.dtype)
        beta = np.asarray(beta, dtype=y.dtype)
        if alpha.ndim == 1:
            alpha = alpha[:, None]
        if beta.ndim == 1:
            beta = beta[:, None]
        return y * beta + ax * alpha

    # -- format kernels ------------------------------------------------
    def csr_spmv(self, row_ptrs, col_idxs, values, x, out=None):
        num_rows = int(row_ptrs.shape[0]) - 1
        row_ids, cols = self._pattern(
            ("csr", id(row_ptrs), id(col_idxs)),
            row_ptrs,
            lambda: (
                self.xp.asarray(
                    np.repeat(
                        np.arange(num_rows, dtype=np.int64), np.diff(row_ptrs)
                    )
                ),
                self.xp.asarray(col_idxs),
            ),
        )

        def factory():
            segment_sum = self._jax.ops.segment_sum

            def kernel(values, x, cols, row_ids):
                gathered = x[:, cols] * values
                return segment_sum(
                    gathered.T, row_ids, num_segments=num_rows
                ).T

            return kernel

        fn = self._jitted(("csr", num_rows), factory)
        return fn(values, x, cols, row_ids)

    def ell_spmv(self, gather_cols, values, x, out=None):
        cols = self._pattern(
            ("ell", id(gather_cols)),
            gather_cols,
            lambda: self.xp.asarray(gather_cols),
        )
        fn = self._jitted(
            ("ell",),
            lambda: (lambda values, x, cols: (values * x[:, cols]).sum(axis=1)),
        )
        return fn(values, x, cols)

    def dia_spmv(self, spans, values, x, out=None, scratch=None):
        num_rows = values.shape[2]

        def factory():
            jnp = self.xp

            def kernel(values, x):
                out = jnp.zeros((x.shape[0], num_rows), dtype=values.dtype)
                for k, d, lo, hi in spans:
                    if lo >= hi:
                        continue
                    out = out.at[:, lo:hi].add(
                        values[:, k, lo:hi] * x[:, lo + d : hi + d]
                    )
                return out

            return kernel

        fn = self._jitted(("dia", spans, num_rows), factory)
        return fn(values, x)

    def dense_matvec(self, values, x, out=None):
        fn = self._jitted(
            ("dense",),
            lambda: (lambda values, x: self.xp.einsum("bij,bj->bi", values, x)),
        )
        return fn(values, x)

    def dense_matvec_acc(self, values, x, work=None):
        return self.dense_matvec(values, x)


#: Singleton default backend; ``backend_of`` returns it for host arrays.
NUMPY = NumpyBackend()

_JAX_BACKEND: JaxBackend | None = None


def get_backend(spec=None) -> ArrayBackend:
    """Resolve a backend name / instance / None to an :class:`ArrayBackend`.

    ``None`` and ``"numpy"`` give the shared :data:`NUMPY` singleton;
    ``"jax"`` constructs (once) and returns the shared JAX backend,
    raising :class:`BackendUnavailableError` when JAX is not installed.
    """
    global _JAX_BACKEND
    if spec is None:
        return NUMPY
    if isinstance(spec, ArrayBackend):
        return spec
    name = str(spec).lower()
    if name in ("numpy", "host", "cpu"):
        return NUMPY
    if name == "jax":
        if _JAX_BACKEND is None:
            _JAX_BACKEND = JaxBackend()
        return _JAX_BACKEND
    raise ValueError(f"unknown backend {spec!r}; expected 'numpy' or 'jax'")


def backend_of(*arrays) -> ArrayBackend:
    """The backend owning the given arrays (host NumPy by default).

    The host check is a fast exact-type test; anything from the ``jax``
    / ``jaxlib`` modules routes to the JAX backend.  Mixed host/device
    operands resolve to the device backend (jax.numpy coerces host
    operands on entry, numpy cannot write device outputs).
    """
    for a in arrays:
        if a is None or type(a) is np.ndarray:
            continue
        mod = type(a).__module__.partition(".")[0]
        if mod in ("numpy", "builtins"):
            continue
        if mod in ("jax", "jaxlib"):
            return get_backend("jax")
    return NUMPY


def is_device_array(a) -> bool:
    """Whether ``a`` belongs to a non-host backend."""
    return not backend_of(a).is_host


def available_backends() -> tuple[str, ...]:
    """Names of backends usable in this environment."""
    names = ["numpy"]
    if importlib.util.find_spec("jax") is not None:
        names.append("jax")
    return tuple(names)
