"""Precision policies for the batched solver stack.

The reference GPU implementation (Ginkgo's batched solvers) templatizes
every kernel over value type; the paper's production runs use FP64, but
because every hot kernel — batched SpMV, the fused BLAS-1 updates, the
triangular sweeps — is memory-bandwidth bound, halving the bytes per
value is a near-2x lever on throughput.  This module defines the three
policies the stack supports and the small amount of metadata each layer
needs to act on them:

* ``fp64`` — the paper's configuration: float64 storage, compute, and
  reductions.  The default everywhere; the bit-exact golden results in
  ``tests/data/golden_solvers_n992.json`` pin this path.
* ``fp32`` — float32 storage and compute, float32 reductions.  Fastest,
  but dot products and norms of long vectors lose digits to rounding.
* ``mixed`` — float32 storage and streaming compute with float64
  accumulation in dot products and norms (einsum's ``dtype=`` upcast).
  Keeps the bandwidth win where it matters (vectors and matrix values
  stream at 4 B/value) while protecting the reductions that drive the
  convergence monitoring.

A policy never changes *convergence targets*; to recover full double
accuracy from a low-precision solve, wrap the solver in
:class:`~repro.core.solvers.refinement.RefinementSolver`, which runs the
cheap inner solve in ``fp32``/``mixed`` and corrects the fp64 residual
outside it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PrecisionPolicy",
    "FP64",
    "FP32",
    "MIXED",
    "POLICIES",
    "precision_policy",
    "policy_for_dtype",
]


@dataclass(frozen=True)
class PrecisionPolicy:
    """Storage/accumulation dtype pair identified by a policy name.

    Attributes
    ----------
    name:
        ``"fp64"``, ``"fp32"`` or ``"mixed"``.
    storage_dtype:
        Dtype of matrix values and solver workspace vectors (the
        streamed, bandwidth-bound data).
    accumulate_dtype:
        Dtype dot products and norms accumulate in.  Scalars derived
        from reductions (alpha, beta, rho, residual norms) live in this
        dtype.
    """

    name: str
    storage_dtype: np.dtype
    accumulate_dtype: np.dtype

    @property
    def value_bytes(self) -> int:
        """Bytes per stored value — the GPU model's ``value_bytes``."""
        return int(np.dtype(self.storage_dtype).itemsize)

    @property
    def is_double(self) -> bool:
        """True when storage is full double precision."""
        return np.dtype(self.storage_dtype) == np.float64


FP64 = PrecisionPolicy("fp64", np.dtype(np.float64), np.dtype(np.float64))
FP32 = PrecisionPolicy("fp32", np.dtype(np.float32), np.dtype(np.float32))
MIXED = PrecisionPolicy("mixed", np.dtype(np.float32), np.dtype(np.float64))

#: Registry of the supported policies, keyed by name.
POLICIES = {p.name: p for p in (FP64, FP32, MIXED)}


def precision_policy(precision) -> PrecisionPolicy:
    """Resolve a policy name (or pass a policy through).

    Accepts a :class:`PrecisionPolicy`, one of the names in
    :data:`POLICIES`, or a numpy dtype/dtype-like (mapped via
    :func:`policy_for_dtype`).
    """
    if isinstance(precision, PrecisionPolicy):
        return precision
    if isinstance(precision, str):
        try:
            return POLICIES[precision]
        except KeyError:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of "
                f"{sorted(POLICIES)}"
            ) from None
    try:
        return policy_for_dtype(np.dtype(precision))
    except TypeError:
        raise ValueError(
            f"cannot interpret {precision!r} as a precision policy"
        ) from None


def policy_for_dtype(dtype) -> PrecisionPolicy:
    """The natural policy for data already held in ``dtype``.

    float64 data runs the fp64 policy; float32 data runs fp32 (pure
    single — a caller who wants fp64 reductions over fp32 storage asks
    for ``"mixed"`` explicitly).  Anything else is an error: the stack
    stores only these two value types.
    """
    dt = np.dtype(dtype)
    if dt == np.float64:
        return FP64
    if dt == np.float32:
        return FP32
    raise ValueError(
        f"no precision policy for dtype {dt}; supported value dtypes are "
        "float32 and float64"
    )
