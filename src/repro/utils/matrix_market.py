"""Minimal Matrix Market I/O for batched matrices.

The paper's reproducibility appendix distributes the XGC matrices as Matrix
Market files, one folder per matrix class with numbered subfolders per batch
entry.  This module reads/writes ``coordinate real general`` matrices and
``array real general`` dense vectors — the subset needed for that layout —
and provides :func:`load_batch_folder` / :func:`save_batch_folder` to mirror
the Zenodo archive structure::

    dgb_2/
      0/A.mtx   0/b.mtx
      1/A.mtx   1/b.mtx
      ...
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from ..core.batch_csr import BatchCsr
from ..core.types import DTYPE

__all__ = [
    "write_matrix_market",
    "read_matrix_market",
    "save_batch_folder",
    "load_batch_folder",
]


def write_matrix_market(path: str, matrix: np.ndarray, *, tol: float = 0.0) -> None:
    """Write a dense 2-D array (sparse coordinate) or 1-D vector (array).

    Entries with ``|a_ij| <= tol`` are dropped from coordinate output.
    """
    arr = np.asarray(matrix, dtype=DTYPE)
    with open(path, "w", encoding="ascii") as fh:
        if arr.ndim == 1:
            fh.write("%%MatrixMarket matrix array real general\n")
            fh.write(f"{arr.shape[0]} 1\n")
            for v in arr:
                fh.write(f"{float(v)!r}\n")
        elif arr.ndim == 2:
            rows, cols = np.nonzero(np.abs(arr) > tol)
            fh.write("%%MatrixMarket matrix coordinate real general\n")
            fh.write(f"{arr.shape[0]} {arr.shape[1]} {rows.size}\n")
            for i, j in zip(rows, cols):
                fh.write(f"{i + 1} {j + 1} {float(arr[i, j])!r}\n")
        else:
            raise ValueError(f"only 1-D/2-D arrays supported, got {arr.ndim}-D")


def read_matrix_market(path: str) -> np.ndarray:
    """Read a Matrix Market file into a dense array.

    Coordinate files come back 2-D; array files come back 2-D as written
    (an ``n x 1`` vector file yields shape ``(n, 1)``).
    """
    with open(path, "r", encoding="ascii") as fh:
        header = fh.readline().strip().lower()
        if not header.startswith("%%matrixmarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        parts = header.split()
        if len(parts) < 4 or parts[1] != "matrix":
            raise ValueError(f"{path}: unsupported header {header!r}")
        layout, field = parts[2], parts[3]
        if field not in ("real", "integer"):
            raise ValueError(f"{path}: only real/integer fields supported")
        symmetry = parts[4] if len(parts) > 4 else "general"

        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()

        if layout == "coordinate":
            nrows, ncols, nnz = (int(t) for t in line.split())
            out = np.zeros((nrows, ncols), dtype=DTYPE)
            for _ in range(nnz):
                i_s, j_s, v_s = fh.readline().split()
                i, j = int(i_s) - 1, int(j_s) - 1
                v = float(v_s)
                out[i, j] = v
                if symmetry == "symmetric" and i != j:
                    out[j, i] = v
            return out
        if layout == "array":
            nrows, ncols = (int(t) for t in line.split())
            data = np.empty(nrows * ncols, dtype=DTYPE)
            for idx in range(nrows * ncols):
                data[idx] = float(fh.readline())
            # MatrixMarket array layout is column-major.
            return data.reshape((ncols, nrows)).T
        raise ValueError(f"{path}: unsupported layout {layout!r}")


def save_batch_folder(
    folder: str, matrix: BatchCsr, rhs: np.ndarray, *, name: str = "A"
) -> None:
    """Write a batch in the Zenodo archive layout (one subfolder per entry)."""
    os.makedirs(folder, exist_ok=True)
    for k in range(matrix.num_batch):
        sub = os.path.join(folder, str(k))
        os.makedirs(sub, exist_ok=True)
        write_matrix_market(os.path.join(sub, f"{name}.mtx"), matrix.entry_dense(k))
        write_matrix_market(os.path.join(sub, "b.mtx"), rhs[k])


def load_batch_folder(folder: str, *, name: str = "A") -> tuple[BatchCsr, np.ndarray]:
    """Read a batch from the Zenodo archive layout.

    Subfolders must be named ``0, 1, 2, ...``; every entry must share the
    matrix dimensions (the union sparsity pattern is used).
    """
    subs = sorted(
        (d for d in os.listdir(folder) if d.isdigit() and
         os.path.isdir(os.path.join(folder, d))),
        key=int,
    )
    if not subs:
        raise FileNotFoundError(f"{folder}: no numbered batch subfolders found")
    mats: list[np.ndarray] = []
    rhss: list[np.ndarray] = []
    for d in subs:
        mats.append(read_matrix_market(os.path.join(folder, d, f"{name}.mtx")))
        vec = read_matrix_market(os.path.join(folder, d, "b.mtx"))
        rhss.append(vec.reshape(-1))
    batch = BatchCsr.from_dense(np.stack(mats, axis=0))
    return batch, np.stack(rhss, axis=0)


def iter_batch_entries(folder: str) -> Iterable[str]:
    """Yield the numbered entry subfolders of a batch folder, in order."""
    for d in sorted(
        (d for d in os.listdir(folder) if d.isdigit()), key=int
    ):
        full = os.path.join(folder, d)
        if os.path.isdir(full):
            yield full
