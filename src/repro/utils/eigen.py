"""Eigenvalue and conditioning diagnostics for batched matrices.

Used by the Fig. 2 reproduction (ion vs electron spectra) and by tests that
assert the XGC proxy matrices have the conditioning properties the paper
relies on (eigenvalues clustered near 1 for ions, a broader — but still
benign — real-part range for electrons).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SpectrumSummary", "batch_eigenvalues", "summarize_spectrum", "condition_number"]


@dataclass(frozen=True)
class SpectrumSummary:
    """Summary statistics of one system's eigenvalue spectrum.

    Attributes mirror the quantities the paper reads off Fig. 2: the range
    of real parts, the largest imaginary magnitude, and the ratio
    ``max|lambda| / min|lambda|`` (a cheap conditioning proxy for these
    well-behaved matrices).
    """

    real_min: float
    real_max: float
    imag_max_abs: float
    abs_min: float
    abs_max: float

    @property
    def real_spread(self) -> float:
        """Ratio of the largest to smallest real part (> 0 spectra)."""
        if self.real_min <= 0:
            return float("inf")
        return self.real_max / self.real_min

    @property
    def modulus_ratio(self) -> float:
        """``max|lambda| / min|lambda||`` — conditioning proxy."""
        if self.abs_min == 0:
            return float("inf")
        return self.abs_max / self.abs_min


def batch_eigenvalues(matrix, batch_index: int = 0) -> np.ndarray:
    """Dense eigenvalues of one batch entry (any format with entry_dense)."""
    dense = matrix.entry_dense(batch_index)
    return np.linalg.eigvals(dense)


def summarize_spectrum(eigenvalues: np.ndarray) -> SpectrumSummary:
    """Summarise a spectrum into the Fig. 2 quantities."""
    ev = np.asarray(eigenvalues)
    re = ev.real
    mod = np.abs(ev)
    return SpectrumSummary(
        real_min=float(re.min()),
        real_max=float(re.max()),
        imag_max_abs=float(np.abs(ev.imag).max()),
        abs_min=float(mod.min()),
        abs_max=float(mod.max()),
    )


def condition_number(matrix, batch_index: int = 0) -> float:
    """2-norm condition number of one batch entry (dense SVD)."""
    dense = matrix.entry_dense(batch_index)
    sv = np.linalg.svd(dense, compute_uv=False)
    if sv[-1] == 0:
        return float("inf")
    return float(sv[0] / sv[-1])
