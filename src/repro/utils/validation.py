"""Argument-validation helpers shared across the library.

These helpers centralise the defensive checks performed at public API
boundaries so that error messages are uniform and the hot kernels can stay
free of redundant validation.  Every function either returns a normalised
value or raises a descriptive exception; none of them copy array data unless
a dtype or contiguity conversion is strictly required.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_in",
    "as_f64_array",
    "as_value_array",
    "as_index_array",
    "check_shape",
    "check_same_shape",
    "check_axis_length",
]


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive.

    Parameters
    ----------
    value:
        Scalar to validate.
    name:
        Name used in the error message.

    Returns
    -------
    The validated value, unchanged.
    """
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is >= 0 and return it."""
    if not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in(value, options: Iterable, name: str):
    """Validate that ``value`` is one of ``options`` and return it."""
    options = tuple(options)
    if value not in options:
        raise ValueError(f"{name} must be one of {options}, got {value!r}")
    return value


def as_f64_array(data, name: str, *, ndim: int | None = None) -> np.ndarray:
    """Convert ``data`` to a C-contiguous float64 array.

    A view is returned whenever the input already satisfies the dtype and
    contiguity requirements, so passing well-formed arrays is free.
    """
    arr = np.ascontiguousarray(data, dtype=np.float64)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr


def _is_foreign_array(data) -> bool:
    """Array-like owned by a non-NumPy backend (e.g. a JAX device array).

    Checked structurally by module prefix so this layer never imports the
    backend registry (utils sits below core).  Foreign arrays must pass
    through untouched: ``np.ascontiguousarray`` would silently pull them
    to the host and break the array-backend seam.
    """
    if not hasattr(data, "dtype") or not hasattr(data, "shape"):
        return False
    mod = type(data).__module__.partition(".")[0]
    return mod not in ("numpy", "builtins")


def as_value_array(
    data, name: str, *, ndim: int | None = None, dtype=None
) -> np.ndarray:
    """Convert ``data`` to a C-contiguous float32 or float64 value array.

    The dtype-preserving sibling of :func:`as_f64_array`: float32 input
    stays float32 and float64 stays float64, so the batch formats can
    carry either working precision.  Any other input dtype (ints, python
    lists, float16, ...) is normalised to float64, the library default.
    Pass ``dtype`` to force a specific value dtype instead.

    A view is returned whenever the input already satisfies the dtype
    and contiguity requirements, so passing well-formed arrays is free.
    Device arrays from a non-NumPy backend are validated (ndim, dtype)
    and returned as-is — cast on-device when a dtype is forced.
    """
    if _is_foreign_array(data):
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype not in (np.float32, np.float64):
                raise ValueError(
                    f"{name} dtype must be float32 or float64, got {dtype}"
                )
            if data.dtype != dtype:
                data = data.astype(dtype)
        if ndim is not None and data.ndim != ndim:
            raise ValueError(
                f"{name} must have {ndim} dimensions, got {data.ndim}"
            )
        return data
    if dtype is None:
        src = np.asarray(data)
        dtype = src.dtype if src.dtype in (np.float32, np.float64) else np.float64
        data = src
    else:
        dtype = np.dtype(dtype)
        if dtype not in (np.float32, np.float64):
            raise ValueError(
                f"{name} dtype must be float32 or float64, got {dtype}"
            )
    arr = np.ascontiguousarray(data, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr


def as_index_array(data, name: str, *, ndim: int | None = None) -> np.ndarray:
    """Convert ``data`` to a C-contiguous int32 index array.

    Raises if any value would overflow int32 — batch problems in this
    library are small per entry, so 32-bit indices are both sufficient and
    match what the GPU kernels in the reference implementation use.
    """
    arr = np.asarray(data)
    if arr.size and (arr.min() < np.iinfo(np.int32).min or arr.max() > np.iinfo(np.int32).max):
        raise ValueError(f"{name} contains values that overflow int32")
    arr = np.ascontiguousarray(arr, dtype=np.int32)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr


def check_shape(arr: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Validate that ``arr.shape`` equals ``shape`` exactly."""
    if tuple(arr.shape) != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr


def check_same_shape(a: np.ndarray, b: np.ndarray, name_a: str, name_b: str) -> None:
    """Validate that two arrays have identical shapes."""
    if a.shape != b.shape:
        raise ValueError(
            f"{name_a} and {name_b} must have the same shape, "
            f"got {a.shape} vs {b.shape}"
        )


def check_axis_length(arr: np.ndarray, axis: int, length: int, name: str) -> np.ndarray:
    """Validate that ``arr.shape[axis] == length``."""
    if arr.shape[axis] != length:
        raise ValueError(
            f"{name} must have length {length} along axis {axis}, "
            f"got {arr.shape[axis]}"
        )
    return arr
