"""Banded-matrix storage utilities (LAPACK-style band layouts).

The XGC collision matrices are banded (a 9-point stencil on an
``nx``-by-``ny`` grid gives ``kl = ku = nx + 1``), and the CPU baseline the
paper compares against is LAPACK's banded solver ``dgbsv``.  This module
provides:

* bandwidth detection for the shared sparsity pattern of a batch,
* conversion between :class:`~repro.core.batch_csr.BatchCsr` and a batched
  *row-band* working layout ``W[k, i, c] = A[k][i, i - kl_work + c]`` used by
  the banded LU/QR kernels (``kl_work = 2*kl`` leaves headroom for pivoting
  fill, mirroring the extra ``kl`` rows of LAPACK's ``AB`` storage),
* conversion to the classical LAPACK ``gbsv`` column layout for
  interoperability tests against ``scipy.linalg.solve_banded``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.batch_csr import BatchCsr
from ..core.types import DTYPE

__all__ = ["Bandwidths", "detect_bandwidths", "BatchBanded", "csr_to_banded"]


@dataclass(frozen=True)
class Bandwidths:
    """Lower (``kl``) and upper (``ku``) bandwidths of a sparsity pattern."""

    kl: int
    ku: int

    @property
    def width(self) -> int:
        """Stored diagonals: ``kl + ku + 1``."""
        return self.kl + self.ku + 1


def detect_bandwidths(matrix: BatchCsr) -> Bandwidths:
    """Bandwidths of the shared CSR pattern (pattern-based, not value-based)."""
    rows = np.repeat(
        np.arange(matrix.num_rows, dtype=np.int64), matrix.nnz_per_row()
    )
    cols = matrix.col_idxs.astype(np.int64)
    if rows.size == 0:
        return Bandwidths(0, 0)
    diff = cols - rows
    return Bandwidths(int(max(0, -diff.min())), int(max(0, diff.max())))


class BatchBanded:
    """A batch of banded matrices in the row-band working layout.

    ``work[k, i, c]`` stores ``A[k][i, i - kl + c]`` for
    ``c in [0, kl + fill + ku]``, where ``fill`` extra upper diagonals are
    reserved for pivoting fill-in.  Out-of-matrix positions are zero.

    Attributes
    ----------
    work:
        The working array, shape ``(num_batch, n, kl + fill + ku + 1)``.
    kl, ku:
        True bandwidths of the stored matrix.
    fill:
        Reserved extra upper diagonals (``kl`` for LU with partial
        pivoting, 0 when no pivoting fill can occur).
    """

    format_name = "banded"

    def __init__(self, work: np.ndarray, kl: int, ku: int, fill: int):
        if work.ndim != 3:
            raise ValueError("work must be 3-D (num_batch, n, width)")
        expected = kl + fill + ku + 1
        if work.shape[2] != expected:
            raise ValueError(
                f"work width {work.shape[2]} != kl+fill+ku+1 = {expected}"
            )
        self.work = np.ascontiguousarray(work, dtype=DTYPE)
        self.kl = int(kl)
        self.ku = int(ku)
        self.fill = int(fill)

    @property
    def num_batch(self) -> int:
        return self.work.shape[0]

    @property
    def num_rows(self) -> int:
        return self.work.shape[1]

    @property
    def diag_col(self) -> int:
        """Working-layout column index that holds the main diagonal."""
        return self.kl

    def entry_dense(self, batch_index: int) -> np.ndarray:
        """Materialise one batch entry as a dense 2-D array."""
        n = self.num_rows
        out = np.zeros((n, n), dtype=DTYPE)
        width = self.work.shape[2]
        for c in range(width):
            offset = c - self.kl  # column = row + offset
            i0 = max(0, -offset)
            i1 = min(n, n - offset)
            if i1 > i0:
                rows = np.arange(i0, i1)
                out[rows, rows + offset] = self.work[batch_index, rows, c]
        return out

    def apply(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Batched banded mat-vec ``out[k] = A[k] @ x[k]``.

        One vectorised pass per stored diagonal (``kl + ku + 1`` passes;
        fill diagonals are all-zero before factorisation and are skipped).
        """
        n = self.num_rows
        if x.shape != (self.num_batch, n):
            raise ValueError(
                f"x must have shape ({self.num_batch}, {n}), got {x.shape}"
            )
        if out is None:
            out = np.zeros((self.num_batch, n), dtype=DTYPE)
        else:
            out[...] = 0.0
        for c in range(self.kl + self.ku + 1):
            offset = c - self.kl
            i0 = max(0, -offset)
            i1 = min(n, n - offset)
            if i1 > i0:
                rows = np.arange(i0, i1)
                out[:, rows] += self.work[:, rows, c] * x[:, rows + offset]
        return out

    def to_lapack_ab(self, batch_index: int) -> np.ndarray:
        """One entry in LAPACK ``solve_banded``/(``l_and_u``) layout.

        Returns ``ab`` with shape ``(kl + ku + 1, n)`` where
        ``ab[ku + i - j, j] = A[i, j]`` — directly usable with
        ``scipy.linalg.solve_banded((kl, ku), ab, b)``.
        """
        n = self.num_rows
        ab = np.zeros((self.kl + self.ku + 1, n), dtype=DTYPE)
        for c in range(self.kl + self.ku + 1):
            offset = c - self.kl  # band offset: column = row + offset
            wcol = c  # fill columns live past kl + ku in the working layout
            i0 = max(0, -offset)
            i1 = min(n, n - offset)
            if i1 > i0:
                rows = np.arange(i0, i1)
                cols = rows + offset
                ab[self.ku - offset, cols] = self.work[batch_index, rows, wcol]
        return ab


def csr_to_banded(matrix: BatchCsr, *, fill: int | None = None) -> BatchBanded:
    """Convert a shared-pattern CSR batch to the banded working layout.

    Parameters
    ----------
    matrix:
        Source batch; its pattern determines ``kl``/``ku``.
    fill:
        Extra upper diagonals to reserve.  Defaults to ``kl`` (what LU with
        partial pivoting can generate, matching LAPACK's ``AB`` headroom).
    """
    bw = detect_bandwidths(matrix)
    if fill is None:
        fill = bw.kl
    n = matrix.num_rows
    width = bw.kl + fill + bw.ku + 1
    work = np.zeros((matrix.num_batch, n, width), dtype=DTYPE)

    rows = np.repeat(np.arange(n, dtype=np.int64), matrix.nnz_per_row())
    cols = matrix.col_idxs.astype(np.int64)
    wcol = cols - rows + bw.kl
    work[:, rows, wcol] = matrix.values
    return BatchBanded(work, bw.kl, bw.ku, fill)
