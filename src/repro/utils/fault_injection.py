"""Deterministic fault injection for the batched solver stack.

Robustness paths are worthless if they cannot be exercised on demand.
This module corrupts a *chosen* system of a batch in a *chosen* way —
no randomness anywhere — so the tests in ``tests/core/test_faults.py``
can prove that each :class:`~repro.core.faults.SolverHealth` state is
reachable and that :class:`~repro.core.solvers.escalation.EscalationSolver`
recovers it, and the Picard loop can rehearse its recovery story
end-to-end (plug a :class:`FaultInjector` into
:class:`~repro.xgc.picard.PicardOptions`).

Fault kinds (:class:`FaultSpec.kind`):

``"nan"`` / ``"inf"``
    Poison the diagonal entry of the spec's rows with NaN / +Inf — the
    classic corrupted-assembly fault.  Unrecoverable by re-solving (the
    operator itself is poisoned); drives the NON_FINITE state.
``"zero_pivot"``
    Zero the diagonal entry of the spec's rows.  Kills the Jacobi
    preconditioner (rejected at generation) and exercises the direct
    solver's partial pivoting.
``"scale_row"``
    Multiply the stored values of the spec's rows by ``factor`` —
    near-singularity / severe ill-conditioning on demand.
``"scale_diag"``
    Multiply only the *diagonal* entry of the spec's rows by ``factor``.
    Unlike row scaling this changes the Jacobi-normalised spectrum, so it
    deterministically drives stationary methods into stagnation (a
    diagonal entry at exactly twice its Richardson fixed point oscillates
    forever) or divergence (larger factors grow the error every sweep)
    while the system itself stays comfortably solvable by stronger rungs.
``"scale_system"``
    Multiply *every* row of the system by ``factor``.  With tiny factors
    (~1e-170) intermediate Krylov quantities underflow to exact zero,
    which is the deterministic trigger for the omega-family breakdown.
``"breakdown"``
    Replace the system with the rotation block ``[[0, 1], [-1, 0]]``
    (identity elsewhere) and the right-hand side with ``e_0``: BiCGSTAB's
    alpha denominator ``r_hat . A p`` is *exactly* zero at iteration 0 —
    the textbook BiCG serendipitous-orthogonality breakdown, on demand.
    Requires the pattern to contain the (0,1) and (1,0) entries (any
    stencil with off-diagonal neighbours qualifies).
``"drop"``
    Zero the system's matrix values and right-hand side: the system is
    trivially satisfied by ``x = 0`` and converges at entry — the benign
    way to take a system out of a batch without changing its shape.
``"nan_guess"``
    Poison the system's *initial guess* (warm start) with NaN.  Fully
    recoverable: a fresh zero-guess re-solve sees an intact system.

All corruption routines return **copies** (``take_batch`` gathers values
and shares the read-only pattern); the caller's matrix, right-hand side,
and guess are never mutated — the Picard assembly buffer in particular
stays pristine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultSpec", "FaultInjector"]

_MATRIX_KINDS = (
    "nan",
    "inf",
    "zero_pivot",
    "scale_row",
    "scale_diag",
    "scale_system",
    "breakdown",
    "drop",
)
_GUESS_KINDS = ("nan_guess",)
_KINDS = _MATRIX_KINDS + _GUESS_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault: what to corrupt, where, and how much.

    Attributes
    ----------
    kind:
        Fault kind (see the module docstring).
    system:
        Batch index of the target system.
    rows:
        Target rows for the row-local kinds (``nan`` / ``inf`` /
        ``zero_pivot`` / ``scale_row`` / ``scale_diag``); defaults to row 0.
    factor:
        Scale factor of the ``scale_row`` / ``scale_diag`` /
        ``scale_system`` kinds.
    """

    kind: str
    system: int
    rows: tuple = (0,)
    factor: float = 1e-8

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; choices: {_KINDS}")
        if self.system < 0:
            raise ValueError(f"system must be >= 0, got {self.system}")


class FaultInjector:
    """Applies a list of :class:`FaultSpec` to matrices, rhs, and guesses.

    Deterministic and picklable (plain data only), so it crosses the
    process boundary of the dist runner and can live inside a frozen
    :class:`~repro.xgc.picard.PicardOptions`.
    """

    def __init__(self, specs) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"expected FaultSpec, got {type(spec).__name__}")

    def __repr__(self) -> str:
        return f"FaultInjector({list(self.specs)!r})"

    # -- application ----------------------------------------------------------

    def corrupt_matrix(self, matrix):
        """A corrupted copy of ``matrix`` (pattern shared, values copied)."""
        if not any(s.kind in _MATRIX_KINDS for s in self.specs):
            return matrix
        nb = matrix.shape.num_batch
        out = matrix.take_batch(np.arange(nb))
        values = out.values
        for spec in self.specs:
            if spec.kind not in _MATRIX_KINDS:
                continue
            self._check_system(spec, nb)
            k = spec.system
            if spec.kind == "nan":
                for r in spec.rows:
                    _set_entry(out, k, r, r, np.nan)
            elif spec.kind == "inf":
                for r in spec.rows:
                    _set_entry(out, k, r, r, np.inf)
            elif spec.kind == "zero_pivot":
                for r in spec.rows:
                    _set_entry(out, k, r, r, 0.0)
            elif spec.kind == "scale_row":
                for r in spec.rows:
                    _scale_row(out, k, r, spec.factor)
            elif spec.kind == "scale_diag":
                for r in spec.rows:
                    _scale_entry(out, k, r, r, spec.factor)
            elif spec.kind == "scale_system":
                values[k] *= spec.factor
            elif spec.kind == "breakdown":
                values[k] = 0.0
                _set_entry(out, k, 0, 1, 1.0)
                _set_entry(out, k, 1, 0, -1.0)
                for r in range(2, matrix.shape.num_rows):
                    _set_entry(out, k, r, r, 1.0)
            elif spec.kind == "drop":
                values[k] = 0.0
        return out

    def corrupt_rhs(self, b: np.ndarray) -> np.ndarray:
        """A corrupted copy of the right-hand sides (where needed)."""
        touched = [
            s for s in self.specs if s.kind in ("breakdown", "drop")
        ]
        if not touched:
            return b
        b = np.array(b, copy=True)
        for spec in touched:
            self._check_system(spec, b.shape[0])
            if spec.kind == "breakdown":
                b[spec.system] = 0.0
                b[spec.system, 0] = 1.0
            else:  # drop
                b[spec.system] = 0.0
        return b

    def corrupt_guess(self, x0: np.ndarray | None) -> np.ndarray | None:
        """A corrupted copy of the initial guesses (warm starts)."""
        if x0 is None:
            return None
        touched = [
            s for s in self.specs if s.kind in _GUESS_KINDS or s.kind == "breakdown"
        ]
        if not touched:
            return x0
        x0 = np.array(x0, copy=True)
        for spec in touched:
            self._check_system(spec, x0.shape[0])
            if spec.kind == "nan_guess":
                x0[spec.system, list(spec.rows)] = np.nan
            else:  # breakdown: the crafted system needs a clean zero start
                x0[spec.system] = 0.0
        return x0

    @property
    def systems(self) -> np.ndarray:
        """Sorted unique batch indices any spec targets."""
        return np.unique([s.system for s in self.specs]).astype(np.int64)

    @staticmethod
    def _check_system(spec: FaultSpec, nb: int) -> None:
        if spec.system >= nb:
            raise IndexError(
                f"fault targets system {spec.system} but the batch has {nb}"
            )


# -- format-aware entry/row accessors ----------------------------------------


def _entry_index(matrix, r: int, c: int) -> tuple:
    """Index (minus the batch axis) of stored entry ``(r, c)``; the entry
    must exist in the shared sparsity pattern."""
    fmt = getattr(matrix, "format_name", None)
    if fmt == "dense":
        return (r, c)
    if fmt == "csr":
        lo, hi = int(matrix.row_ptrs[r]), int(matrix.row_ptrs[r + 1])
        hit = np.flatnonzero(matrix.col_idxs[lo:hi] == c)
        if hit.size:
            return (lo + int(hit[0]),)
    elif fmt == "ell":
        hit = np.flatnonzero(matrix.col_idxs[:, r] == c)
        if hit.size:
            return (int(hit[0]), r)
    elif fmt == "dia":
        d = c - r
        pos = int(np.searchsorted(matrix.offsets, d))
        if pos < matrix.offsets.size and matrix.offsets[pos] == d:
            return (pos, r)
    else:
        raise TypeError(f"unsupported matrix format {fmt!r}")
    raise ValueError(
        f"entry ({r}, {c}) is not in the {fmt} sparsity pattern; "
        f"fault injection can only write stored entries"
    )


def _set_entry(matrix, k: int, r: int, c: int, value: float) -> None:
    matrix.values[(k, *_entry_index(matrix, r, c))] = value


def _scale_entry(matrix, k: int, r: int, c: int, factor: float) -> None:
    matrix.values[(k, *_entry_index(matrix, r, c))] *= factor


def _scale_row(matrix, k: int, r: int, factor: float) -> None:
    """Scale every stored entry of row ``r`` in system ``k``."""
    fmt = getattr(matrix, "format_name", None)
    values = matrix.values
    if fmt == "dense":
        values[k, r, :] *= factor
    elif fmt == "csr":
        lo, hi = int(matrix.row_ptrs[r]), int(matrix.row_ptrs[r + 1])
        values[k, lo:hi] *= factor
    elif fmt in ("ell", "dia"):
        # Both store row r's entries at [:, r] along the slot/diagonal axis
        # (padding entries are zero, so scaling them is a no-op).
        values[k, :, r] *= factor
    else:
        raise TypeError(f"unsupported matrix format {fmt!r}")
