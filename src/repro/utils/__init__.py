"""Shared utilities: banded storage, Matrix Market I/O, spectra, validation.

Submodules are loaded lazily (PEP 562): :mod:`repro.core` formats import
:mod:`repro.utils.validation` while :mod:`repro.utils.banded` imports the
formats back, so an eager package ``__init__`` would be circular.
"""

import importlib

__all__ = [
    "BatchBanded",
    "Bandwidths",
    "csr_to_banded",
    "detect_bandwidths",
    "SpectrumSummary",
    "batch_eigenvalues",
    "condition_number",
    "summarize_spectrum",
    "write_matrix_market",
    "read_matrix_market",
    "save_batch_folder",
    "load_batch_folder",
    "Reordering",
    "rcm_reordering",
    "apply_reordering",
    "FaultSpec",
    "FaultInjector",
]

_LOCATIONS = {
    "BatchBanded": "banded",
    "Bandwidths": "banded",
    "csr_to_banded": "banded",
    "detect_bandwidths": "banded",
    "FaultSpec": "fault_injection",
    "FaultInjector": "fault_injection",
    "SpectrumSummary": "eigen",
    "batch_eigenvalues": "eigen",
    "condition_number": "eigen",
    "summarize_spectrum": "eigen",
    "write_matrix_market": "matrix_market",
    "read_matrix_market": "matrix_market",
    "save_batch_folder": "matrix_market",
    "load_batch_folder": "matrix_market",
    "Reordering": "reorder",
    "rcm_reordering": "reorder",
    "apply_reordering": "reorder",
}


def __getattr__(name: str):
    try:
        module = _LOCATIONS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.utils' has no attribute {name!r}") from None
    return getattr(importlib.import_module(f".{module}", __name__), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))
