"""Bandwidth-reducing reordering for batched patterns (reverse Cuthill-McKee).

The banded baselines (``dgbsv``, the QR solver, Thomas) are only as good
as the pattern's bandwidth.  The XGC stencil is already optimally ordered
(lexicographic grid order gives ``kl = ku = nv_par + 1``), but a user
bringing an arbitrarily-ordered mesh is not so lucky — a symmetric
permutation computed once on the *shared* pattern and applied to every
system in the batch can shrink the band dramatically.

The RCM ordering is computed with :mod:`networkx` on the symmetrised
pattern graph; everything else (permutation application, vectors, results)
is plain NumPy over the batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..core.batch_csr import BatchCsr
from ..core.convert import to_format
from ..core.types import INDEX_DTYPE
from .banded import detect_bandwidths

__all__ = ["Reordering", "rcm_reordering", "apply_reordering"]


@dataclass(frozen=True)
class Reordering:
    """A symmetric permutation shared by a whole batch.

    Attributes
    ----------
    perm:
        ``perm[new_index] = old_index``.
    inv_perm:
        ``inv_perm[old_index] = new_index``.
    bandwidth_before, bandwidth_after:
        ``max(kl, ku)`` of the shared pattern, before and after.
    """

    perm: np.ndarray
    inv_perm: np.ndarray
    bandwidth_before: int
    bandwidth_after: int

    @property
    def improved(self) -> bool:
        """Whether the ordering actually shrank the band."""
        return self.bandwidth_after < self.bandwidth_before

    def permute_vector(self, x: np.ndarray) -> np.ndarray:
        """Reorder batch vectors ``(nb, n)`` into the new numbering."""
        return np.ascontiguousarray(x[..., self.perm])

    def unpermute_vector(self, x: np.ndarray) -> np.ndarray:
        """Map batch vectors back to the original numbering."""
        return np.ascontiguousarray(x[..., self.inv_perm])


def rcm_reordering(matrix) -> Reordering:
    """Compute an RCM ordering of the shared (symmetrised) pattern.

    The permutation is pattern-only: it is computed once and is valid for
    every system of the batch (they share the pattern by construction).
    """
    csr = to_format(matrix, "csr")
    if csr.num_rows != csr.num_cols:
        raise ValueError("reordering requires square systems")
    n = csr.num_rows
    rows = np.repeat(np.arange(n, dtype=np.int64), csr.nnz_per_row())
    cols = csr.col_idxs.astype(np.int64)

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(zip(rows.tolist(), cols.tolist()))
    perm = np.fromiter(
        nx.utils.reverse_cuthill_mckee_ordering(graph), dtype=np.int64, count=n
    )
    inv_perm = np.empty(n, dtype=np.int64)
    inv_perm[perm] = np.arange(n)

    before = detect_bandwidths(csr)
    after_rows = inv_perm[rows]
    after_cols = inv_perm[cols]
    diff = after_cols - after_rows
    bw_after = int(max(np.abs(diff).max(initial=0), 0))

    return Reordering(
        perm=perm,
        inv_perm=inv_perm,
        bandwidth_before=int(max(before.kl, before.ku)),
        bandwidth_after=bw_after,
    )


def apply_reordering(matrix, reordering: Reordering) -> BatchCsr:
    """Symmetrically permute every system: ``P A P^T`` on the shared pattern."""
    csr = to_format(matrix, "csr")
    n = csr.num_rows
    if reordering.perm.shape[0] != n:
        raise ValueError(
            f"reordering is for n = {reordering.perm.shape[0]}, "
            f"matrix has n = {n}"
        )
    rows = np.repeat(np.arange(n, dtype=np.int64), csr.nnz_per_row())
    cols = csr.col_idxs.astype(np.int64)
    new_rows = reordering.inv_perm[rows]
    new_cols = reordering.inv_perm[cols]

    order = np.lexsort((new_cols, new_rows))
    row_counts = np.bincount(new_rows, minlength=n)
    row_ptrs = np.zeros(n + 1, dtype=INDEX_DTYPE)
    np.cumsum(row_counts, out=row_ptrs[1:])
    return BatchCsr(
        csr.num_cols,
        row_ptrs,
        new_cols[order].astype(INDEX_DTYPE),
        np.ascontiguousarray(csr.values[:, order]),
        check=False,
    )
