"""Generators for the paper's figures (data series + rendered panels)."""

from __future__ import annotations


from ..core.solvers.schedule import iterative_solver_names
from ..gpu import (
    A100,
    SKYLAKE_NODE,
    TABLE1_GPUS,
    V100,
    estimate_cpu_dgbsv,
    estimate_direct_qr,
    estimate_iterative_solve,
    estimate_spmv,
    variant_estimates,
)
from ..utils import batch_eigenvalues, summarize_spectrum
from ..xgc import simulate_picard_timeline
from .common import (
    BATCH_SIZES,
    KL,
    KU,
    N_ROWS,
    STORED_ELL,
    ExperimentResult,
    measured_picard,
    measured_variant_iterations,
    measured_zero_guess,
    paper_app,
    tile_iterations,
)

__all__ = ["fig1", "fig2", "fig4", "fig6", "fig7", "fig8", "fig9",
           "fig_tune"]


def fig1(num_systems: int = 1000) -> ExperimentResult:
    """Fig. 1 — Picard-loop execution timeline, CPU vs GPU solver."""
    cpu_rep = simulate_picard_timeline(num_systems, solver="cpu")
    gpu_rep = simulate_picard_timeline(num_systems, solver="gpu")
    s = cpu_rep.summary()
    text = (
        "Fig 1: one Picard loop of the proxy app\n"
        f"  CPU-solver config: total {s['total_ms']:.1f} ms | "
        f"CPU {s['cpu_percent']:.1f}% | dgbsv/CPU "
        f"{s['solve_percent_of_cpu']:.1f}% | transfer "
        f"{s['transfer_percent']:.1f}%\n"
        f"  GPU-solver config: total {1e3 * gpu_rep.total_time:.1f} ms "
        f"(no CPU lanes, no transfers)\n"
        f"  gain from moving the solver: "
        f"{cpu_rep.total_time / gpu_rep.total_time:.2f}x"
    )
    return ExperimentResult(
        name="fig1",
        description="Picard-loop execution timeline",
        data={"cpu": s, "gpu_total_ms": 1e3 * gpu_rep.total_time,
              "segments": cpu_rep.segments},
        text=text,
    )


def fig2(num_mesh_nodes: int = 2) -> ExperimentResult:
    """Fig. 2 — eigenvalue spectra of the electron and ion matrices."""
    from ..core import to_format

    app = paper_app(num_mesh_nodes)
    matrix, _ = app.build_matrices()
    csr = to_format(matrix, "csr")
    spectra = {}
    lines = ["Fig 2: eigenvalue spectra of the species matrices"]
    for idx, species in ((0, "electron"), (1, "ion")):
        ev = batch_eigenvalues(csr, idx)
        s = summarize_spectrum(ev)
        spectra[species] = s
        lines.append(
            f"  {species:>9}: Re in [{s.real_min:8.4f}, {s.real_max:9.3f}]"
            f"  |Im| <= {s.imag_max_abs:7.4f}"
            f"  Re-spread {s.real_spread:8.2f}x"
        )
    return ExperimentResult(
        name="fig2",
        description="species eigenvalue spectra",
        data=spectra,
        text="\n".join(lines),
    )


def fig4(num_mesh_nodes: int = 2) -> ExperimentResult:
    """Fig. 4 (and Fig. 3) — sparsity pattern and format storage."""
    import collections

    from ..core import to_format

    app = paper_app(num_mesh_nodes)
    ell, _ = app.build_matrices()
    csr = to_format(ell, "csr")
    dense = to_format(csr, "dense")
    hist = collections.Counter(app.stencil.nnz_per_row().tolist())
    text = "\n".join([
        "Fig 4: sparsity pattern of one batch entry",
        f"  rows {app.stencil.num_rows}, nnz/row "
        + ", ".join(f"{c}x{k}" for k, c in sorted(hist.items())),
        f"  bandwidth kl = ku = {app.config.grid.nv_par + 1}",
        f"Fig 3 storage (num_batch = {csr.num_batch}): dense "
        f"{dense.storage_bytes() / 1e6:.2f} MB, CSR "
        f"{csr.storage_bytes() / 1e6:.2f} MB, ELL "
        f"{ell.storage_bytes() / 1e6:.2f} MB "
        f"({100 * ell.padding_fraction():.1f}% padding)",
    ])
    return ExperimentResult(
        name="fig4",
        description="sparsity pattern and format storage",
        data={"nnz_histogram": dict(hist),
              "storage_bytes": {"dense": dense.storage_bytes(),
                                "csr": csr.storage_bytes(),
                                "ell": ell.storage_bytes()}},
        text=text,
    )


def fig6(gpus: tuple = TABLE1_GPUS) -> ExperimentResult:
    """Fig. 6 — solve time vs batch size, all solvers/formats/platforms.

    ``gpus`` defaults to the paper's Table I targets so the reproduction
    artifact stays pinned; pass :data:`repro.gpu.GPUS` (or any subset) to
    regenerate the crossover study on the extended hardware zoo.
    """
    app, solve = measured_zero_guess()
    nnz = app.stencil.nnz
    rows: dict[int, dict[str, float]] = {}
    for nb in BATCH_SIZES:
        its = tile_iterations(solve.iterations, nb)
        entry: dict[str, float] = {}
        for hw in gpus:
            for fmt, stored in (("csr", None), ("ell", STORED_ELL)):
                entry[f"{hw.name}-{fmt}"] = estimate_iterative_solve(
                    hw, fmt, N_ROWS, nnz, its, stored_nnz=stored
                ).total_time_s
        entry["V100-qr"] = estimate_direct_qr(
            V100, N_ROWS, KL, KU, nb
        ).total_time_s
        entry["Skylake-dgbsv"] = estimate_cpu_dgbsv(
            SKYLAKE_NODE, N_ROWS, KL, KU, nb
        ).total_time_s
        rows[nb] = entry

    # Per-solver comparison at a fixed batch: the same measured iteration
    # vector charged through each solver's declared operation schedule
    # (A100, ELL — the paper's fastest iterative configuration).  This is
    # the model-side view of why production chose BiCGSTAB.
    nb_fix = 960
    its_fix = tile_iterations(solve.iterations, nb_fix)
    per_solver = {
        s: estimate_iterative_solve(
            A100, "ell", N_ROWS, nnz, its_fix,
            stored_nnz=STORED_ELL, solver=s,
        ).total_time_s
        for s in iterative_solver_names()
    }

    # Pipelined-crossover inset: classic vs pipelined, each charged its
    # OWN measured iteration counts (pipelined CG's residual replacement
    # and pipelined BiCGSTAB's forgone ||s|| early exit may shift them),
    # across batch sizes and GPUs on the ELL format.  The reduction-round
    # latency saved by the pipelined variants is constant per kernel trip
    # while their per-system extras scale with the batch, so each series
    # pair crosses at some batch size; report it per GPU — measured
    # inside the sweep, extrapolated from the linear tail otherwise.
    variant_its = measured_variant_iterations()
    families = {
        "cg": ("cg", "pipelined_cg"),
        "bicgstab": ("bicgstab", "pipelined_bicgstab"),
    }
    pipelined: dict[str, dict] = {}
    crossover_lines = []
    for family, (classic, pipe) in families.items():
        for hw in gpus:
            # variant_estimates is the single pricing path shared with
            # choose_solver_variant and the autotuning gym, so this inset
            # plots exactly the numbers the tuner acts on.
            series = {classic: [], pipe: []}
            for nb in BATCH_SIZES:
                ests = variant_estimates(
                    hw, "ell", N_ROWS, nnz,
                    {name: tile_iterations(variant_its[name], nb)
                     for name in (classic, pipe)},
                    stored_nnz=STORED_ELL,
                )
                for name in (classic, pipe):
                    series[name].append(ests[name].total_time_s)
            gap = [c - p for c, p in zip(series[classic], series[pipe])]
            inside = [nb for nb, g in zip(BATCH_SIZES, gap) if g <= 0.0]
            if inside:
                where = f"classic from batch {inside[0]}"
                cross = float(inside[0])
            else:
                # Both series are affine in the batch size beyond slot
                # saturation: extrapolate from the last two sweep points.
                n1, n2 = BATCH_SIZES[-2], BATCH_SIZES[-1]
                slope = (gap[-1] - gap[-2]) / (n2 - n1)
                if slope >= 0.0:
                    where = "pipelined at every batch size"
                    cross = float("inf")
                else:
                    cross = n2 + gap[-1] / -slope
                    where = f"classic from batch ~{cross:.0f} (extrapolated)"
            pipelined[f"{family}-{hw.name}"] = {
                "batch_sizes": list(BATCH_SIZES),
                "classic_s": series[classic],
                "pipelined_s": series[pipe],
                "crossover_batch": cross,
            }
            saved = [
                f"{(c - p) * 1e6:+.0f}"
                for c, p in zip(series[classic], series[pipe])
            ]
            crossover_lines.append(
                f"  {family:>8} {hw.name:<6} classic-pipelined [us]: "
                + " ".join(f"{s:>7}" for s in saved)
                + f" | {where}"
            )

    cols = list(next(iter(rows.values())))
    header = f"{'batch':>6} " + " ".join(f"{c:>14}" for c in cols)
    left = [header]
    right = [header]
    for nb, entry in rows.items():
        left.append(f"{nb:>6} " + " ".join(
            f"{entry[c] * 1e3:14.3f}" for c in cols))
        right.append(f"{nb:>6} " + " ".join(
            f"{entry[c] / nb * 1e6:14.3f}" for c in cols))
    text = (
        "Fig 6 (left): total solve time [ms]\n" + "\n".join(left)
        + "\n\nFig 6 (right): time per batch entry [us]\n" + "\n".join(right)
        + f"\n\nFig 6 (inset): solver schedules at batch {nb_fix} "
        "(A100, ELL) [ms]\n"
        + "\n".join(
            f"  {s:>18} {t * 1e3:10.3f}" for s, t in sorted(per_solver.items())
        )
        + "\n\nFig 6 (inset): classic vs pipelined crossover (ELL; "
        "positive = pipelined faster)\n"
        + f"  {'':>8} {'':<6} batch sizes:            "
        + " ".join(f"{nb:>7}" for nb in BATCH_SIZES) + "\n"
        + "\n".join(crossover_lines)
    )
    return ExperimentResult(
        name="fig6", description="solve time vs batch size",
        data={"series": rows, "per_solver": per_solver,
              "pipelined_crossover": pipelined},
        text=text,
    )


def fig7() -> ExperimentResult:
    """Fig. 7 — SpMV kernel time, CSR vs ELL, on the A100."""
    app, _ = measured_zero_guess()
    nnz = app.stencil.nnz
    series = []
    lines = [f"{'batch':>6} {'CSR [us]':>12} {'ELL [us]':>12} {'CSR/ELL':>8}"]
    for nb in BATCH_SIZES:
        t_csr = estimate_spmv(A100, "csr", N_ROWS, nnz, nb).total_time_s
        t_ell = estimate_spmv(
            A100, "ell", N_ROWS, nnz, nb, stored_nnz=STORED_ELL
        ).total_time_s
        series.append((nb, t_csr, t_ell))
        lines.append(
            f"{nb:>6} {t_csr * 1e6:12.2f} {t_ell * 1e6:12.2f} "
            f"{t_csr / t_ell:8.2f}"
        )
    return ExperimentResult(
        name="fig7", description="A100 SpMV kernel times",
        data={"series": series},
        text="Fig 7: batched SpMV kernel time on A100\n" + "\n".join(lines),
    )


def _picard_gpu_total(step_result, hw, nb, nnz, fmt, select=slice(None)):
    stored = STORED_ELL if fmt == "ell" else None
    t = 0.0
    for iters in step_result.linear_iterations:
        sel = iters[select]
        t += estimate_iterative_solve(
            hw, fmt, N_ROWS, nnz, tile_iterations(sel, nb), stored_nnz=stored
        ).total_time_s
    return t


def fig8() -> ExperimentResult:
    """Fig. 8 — warm start vs zero guess, 5 Picard iterations, A100."""
    app, warm = measured_picard(warm_start=True)
    _, zero = measured_picard(warm_start=False)
    nnz = app.stencil.nnz
    speedups: dict[str, list] = {"csr": [], "ell": []}
    lines = [f"{'batch':>6} {'fmt':>4} {'zero [ms]':>11} {'warm [ms]':>11} "
             f"{'speedup':>8}"]
    for fmt in ("csr", "ell"):
        for nb in BATCH_SIZES:
            t0 = _picard_gpu_total(zero, A100, nb, nnz, fmt)
            t1 = _picard_gpu_total(warm, A100, nb, nnz, fmt)
            speedups[fmt].append((nb, t0 / t1))
            lines.append(
                f"{nb:>6} {fmt:>4} {t0 * 1e3:11.3f} {t1 * 1e3:11.3f} "
                f"{t0 / t1:8.2f}"
            )
    return ExperimentResult(
        name="fig8", description="initial-guess effect on total time",
        data={"speedups": speedups},
        text="Fig 8: warm start vs zero guess, 5 Picard iterations, A100\n"
        + "\n".join(lines),
    )


def fig9() -> ExperimentResult:
    """Fig. 9 — GPU speedup over Skylake dgbsv, 5 Picard iterations."""
    app, warm = measured_picard(warm_start=True)
    nnz = app.stencil.nnz
    ns = len(app.config.species)
    combined: dict[str, list] = {hw.name: [] for hw in TABLE1_GPUS}
    lines = [f"{'batch':>6} "
             + " ".join(f"{hw.name + ' comb':>11}" for hw in TABLE1_GPUS)
             + f" {'V100 ion':>11} {'V100 e-':>11}"]
    for nb in BATCH_SIZES:
        t_cpu = 5 * estimate_cpu_dgbsv(
            SKYLAKE_NODE, N_ROWS, KL, KU, nb
        ).total_time_s
        row = [f"{nb:>6}"]
        for hw in TABLE1_GPUS:
            s = t_cpu / _picard_gpu_total(warm, hw, nb, nnz, "ell")
            combined[hw.name].append((nb, s))
            row.append(f"{s:11.2f}")
        s_ion = t_cpu / _picard_gpu_total(
            warm, V100, nb, nnz, "ell", select=slice(1, None, ns)
        )
        s_e = t_cpu / _picard_gpu_total(
            warm, V100, nb, nnz, "ell", select=slice(0, None, ns)
        )
        row += [f"{s_ion:11.2f}", f"{s_e:11.2f}"]
        lines.append(" ".join(row))
    return ExperimentResult(
        name="fig9", description="speedup over Skylake dgbsv",
        data={"combined": combined},
        text="Fig 9: speedup of batched BiCGSTAB (ELL, warm) over Skylake "
        "dgbsv, 5 Picard iterations\n" + "\n".join(lines),
    )


def fig_tune(num_batch: int = 960, budget: int = 160,
             seed: int = 0) -> ExperimentResult:
    """Autotuning gym — search trajectories and regret vs the hand rules.

    Companion panel to Fig. 6: on one (GPU, batch) cell the three search
    agents race over the full configuration space, each seeded with the
    hand-rule baseline.  Because the space is small enough to enumerate,
    the panel shows true *regret* (running best minus the exhaustive
    optimum) per evaluation — the ArchGym-style view of how quickly each
    agent closes the gap the hand rules leave open.
    """
    from ..tune import (
        CostModelEnv,
        GeneticAgent,
        HillClimbAgent,
        RandomSearchAgent,
        baseline_config,
        exhaustive_best,
        space_for_scenario,
        xgc_scenario,
    )

    hw = V100
    scenario = xgc_scenario()
    space = space_for_scenario(scenario)
    env = CostModelEnv(hw, scenario, num_batch)
    optimum, optimum_cost = exhaustive_best(env)
    baseline = baseline_config(hw, scenario, num_batch)
    baseline_cost = env.evaluate(baseline)

    agents = (
        RandomSearchAgent(budget=budget, seed=seed),
        HillClimbAgent(budget=budget, seed=seed, temperature=0.05),
        GeneticAgent(budget=budget, seed=seed),
    )
    series: dict[str, dict] = {}
    for agent in agents:
        agent_env = CostModelEnv(hw, scenario, num_batch)
        res = agent.search(agent_env, space, seed_config=baseline)
        series[agent.name] = {
            "best_cost_s": res.best_cost,
            "best_config": res.best_config.to_dict(),
            "evaluations": res.evaluations,
            "regret_s": res.regret_curve(optimum_cost),
            "model_evaluations": agent_env.evaluations,
        }

    checkpoints = sorted({c for c in (1, 5, 10, 20, 40, 80, budget)
                          if c <= budget})
    lines = [
        f"{'evals':>6} "
        + " ".join(f"{name + ' [us]':>16}" for name in series)
    ]
    for c in checkpoints:
        row = [f"{c:>6}"]
        for name in series:
            regret = series[name]["regret_s"]
            row.append(f"{regret[min(c, len(regret)) - 1] * 1e6:16.3f}")
        lines.append(" ".join(row))
    text = (
        f"Fig tune: search regret on {hw.name}, batch {num_batch} "
        f"(space of {space.size()} configs)\n"
        f"  hand rules: {baseline.solver}/{baseline.fmt}/"
        f"{baseline.precision} -> {baseline_cost * 1e3:.3f} ms\n"
        f"  optimum   : {optimum.solver}/{optimum.fmt}/{optimum.precision}"
        f" @ {optimum.target_blocks_per_cu} block(s)/CU -> "
        f"{optimum_cost * 1e3:.3f} ms "
        f"({baseline_cost / optimum_cost:.2f}x over hand rules)\n\n"
        "  running regret (best-so-far minus optimum):\n  "
        + "\n  ".join(lines)
    )
    return ExperimentResult(
        name="fig_tune",
        description="autotuning search trajectories and regret",
        data={
            "hardware": hw.name,
            "num_batch": num_batch,
            "budget": budget,
            "space_size": space.size(),
            "baseline": {"config": baseline.to_dict(),
                         "cost_s": baseline_cost},
            "optimum": {"config": optimum.to_dict(),
                        "cost_s": optimum_cost},
            "agents": series,
        },
        text=text,
    )
