"""Generators for the paper's tables."""

from __future__ import annotations

from ..gpu import SKYLAKE_NODE, TABLE1_GPUS, collect_metrics, metrics_table
from .common import (
    N_ROWS,
    STORED_ELL,
    ExperimentResult,
    measured_picard,
    measured_zero_guess,
    tile_iterations,
)

__all__ = ["table1", "table2", "table3"]


def table1() -> ExperimentResult:
    """Table I — hardware characteristics (catalog transcription)."""
    lines = [
        f"{'Architecture':<22} {'FP64 TF':>8} {'BW GB/s':>8} "
        f"{'(L1+sh)/CU KB':>14} {'L2 MB':>6} {'CUs':>5}"
    ]
    rows = {}
    for hw in TABLE1_GPUS:
        rows[hw.name] = {
            "tflops": hw.peak_fp64_tflops, "bw": hw.mem_bw_gbs,
            "l1_kib": hw.l1_shared_per_cu_kib, "l2_mib": hw.l2_mib,
            "cus": hw.num_cus,
        }
        lines.append(
            f"{hw.name:<22} {hw.peak_fp64_tflops:8.1f} {hw.mem_bw_gbs:8.0f} "
            f"{hw.l1_shared_per_cu_kib:>14} {hw.l2_mib:6.0f} {hw.num_cus:>5}"
        )
    cpu = SKYLAKE_NODE
    lines.append(
        f"{'Xeon Gold 6148 (1x)':<22} "
        f"{cpu.peak_fp64_tflops_per_socket:8.1f} "
        f"{cpu.mem_bw_gbs_per_socket:8.0f} {'64':>14} {'20':>6} "
        f"{cpu.cores_per_socket:>5}"
    )
    return ExperimentResult(
        name="table1", description="hardware characteristics",
        data=rows, text="Table I: theoretical performance numbers\n"
        + "\n".join(lines),
    )


def table2(num_batch: int = 960) -> ExperimentResult:
    """Table II — modelled profiler metrics per platform and format."""
    app, solve = measured_zero_guess()
    its = tile_iterations(solve.iterations, num_batch)
    rows = []
    for hw in TABLE1_GPUS:
        for fmt, stored in (("csr", None), ("ell", STORED_ELL)):
            rows.append(
                collect_metrics(
                    hw, fmt, N_ROWS, app.stencil.nnz, its,
                    stored_nnz=stored,
                    report_l1=hw.name != "MI100",
                )
            )
    return ExperimentResult(
        name="table2", description="profiler metrics",
        data={"rows": rows},
        text="Table II: modelled profiler metrics\n" + metrics_table(rows),
    )


def table3() -> ExperimentResult:
    """Table III — linear iterations per Picard iteration (warm start)."""
    app, step = measured_picard(warm_start=True)
    ns = len(app.config.species)
    e = step.linear_iterations[:, 0::ns].mean(axis=1)
    ion = step.linear_iterations[:, 1::ns].mean(axis=1)
    lines = [
        "Table III: linear iterations per Picard iteration "
        "(warm start, ELL, tol 1e-10)",
        f"{'Picard':>7} {'electron':>9} {'ion':>6}"
        "    (paper: e 30,28,20,16,12 / ion 5,4,3,2,2)",
    ]
    for k in range(len(e)):
        lines.append(f"{k:>7} {e[k]:9.1f} {ion[k]:6.1f}")
    return ExperimentResult(
        name="table3", description="Picard-loop iteration counts",
        data={"electron": e, "ion": ion,
              "conservation": step.conservation.worst()},
        text="\n".join(lines),
    )
