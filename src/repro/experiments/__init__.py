"""Programmatic reproduction of every paper artefact.

Each generator runs the real numerics (batched solves, Picard loops,
eigendecompositions) and the performance model, and returns an
:class:`~repro.experiments.common.ExperimentResult` with both structured
data and a rendered text block:

>>> from repro.experiments import fig6
>>> result = fig6()                       # doctest: +SKIP
>>> result.data["series"][3840]["A100-ell"]   # doctest: +SKIP

``run_all`` regenerates everything (also exposed as
``python -m repro reproduce``); the pytest-benchmark suite in
``benchmarks/`` wraps the same generators with timing and shape
assertions.
"""

from __future__ import annotations

from .common import ExperimentResult
from .figures import fig1, fig2, fig4, fig6, fig7, fig8, fig9, fig_tune
from .tables import table1, table2, table3

__all__ = [
    "ExperimentResult",
    "fig1",
    "fig2",
    "fig4",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig_tune",
    "table1",
    "table2",
    "table3",
    "ALL_EXPERIMENTS",
    "run_all",
]

#: Registry of every artefact generator, in paper order (the autotuning
#: companion panel last — it is this reproduction's addition, not one of
#: the paper's numbered figures).
ALL_EXPERIMENTS = {
    "fig1": fig1,
    "fig2": fig2,
    "fig4": fig4,
    "table1": table1,
    "fig6": fig6,
    "fig7": fig7,
    "table2": table2,
    "table3": table3,
    "fig8": fig8,
    "fig9": fig9,
    "fig_tune": fig_tune,
}


def run_all(output_dir: str | None = None, *, verbose: bool = False):
    """Regenerate every artefact; optionally write them to ``output_dir``.

    Returns ``{name: ExperimentResult}`` in paper order.
    """
    results = {}
    for name, generator in ALL_EXPERIMENTS.items():
        result = generator()
        results[name] = result
        if output_dir is not None:
            result.write(output_dir)
        if verbose:
            print(result.text)
            print()
    return results
