"""Shared machinery of the experiment generators.

Each module in :mod:`repro.experiments` regenerates one artefact of the
paper (a figure's data series or a table's rows) and returns an
:class:`ExperimentResult`: structured data for programmatic use plus a
rendered text block for humans.  The benchmark suite wraps these
generators with pytest-benchmark timing and shape assertions;
``python -m repro reproduce`` writes them all to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..core import AbsoluteResidual, BatchBicgstab, BatchLogger, make_solver
from ..xgc import CollisionProxyApp, PicardOptions, PicardStepper, ProxyAppConfig

__all__ = [
    "ExperimentResult",
    "BATCH_SIZES",
    "N_ROWS",
    "KL",
    "KU",
    "STORED_ELL",
    "paper_app",
    "measured_zero_guess",
    "measured_variant_iterations",
    "measured_picard",
    "spd_stencil_batch",
    "tile_iterations",
]

#: Batch sizes swept by the figure generators (the paper's x-axes).
BATCH_SIZES = (120, 240, 480, 960, 1920, 3840)

#: Problem constants at paper scale.
N_ROWS = 992
KL = KU = 33
STORED_ELL = 9 * N_ROWS


@dataclass
class ExperimentResult:
    """One regenerated paper artefact.

    Attributes
    ----------
    name:
        Artefact identifier (``"fig6"``, ``"table3"``, ...).
    description:
        One-line description of what the artefact shows.
    data:
        Structured payload (dict of arrays/records; schema per artefact).
    text:
        Rendered, human-readable block (what lands in results files).
    """

    name: str
    description: str
    data: dict = field(default_factory=dict)
    text: str = ""

    def write(self, directory) -> str:
        """Write the rendered text to ``directory/<name>.txt``; returns path."""
        import pathlib

        out = pathlib.Path(directory)
        out.mkdir(parents=True, exist_ok=True)
        path = out / f"{self.name}.txt"
        path.write_text(self.text + "\n")
        return str(path)


@lru_cache(maxsize=4)
def paper_app(num_mesh_nodes: int = 8) -> CollisionProxyApp:
    """The paper-scale proxy app (cached — the stencil build is shared)."""
    return CollisionProxyApp(ProxyAppConfig(num_mesh_nodes=num_mesh_nodes))


@lru_cache(maxsize=4)
def measured_zero_guess(num_mesh_nodes: int = 8):
    """One real zero-guess batched solve; returns (app, SolveResult)."""
    app = paper_app(num_mesh_nodes)
    matrix, f = app.build_matrices()
    solver = BatchBicgstab(
        preconditioner="jacobi",
        criterion=AbsoluteResidual(1e-10),
        max_iter=500,
        logger=BatchLogger(),
    )
    return app, solver.solve(matrix, f)


@lru_cache(maxsize=2)
def spd_stencil_batch(num_mesh_nodes: int = 2):
    """An SPD batch on the paper's n = 992 stencil pattern.

    The collision matrices are nonsymmetric, so the CG family needs a
    surrogate with the same sparsity structure and size: the symmetric
    part of the assembled batch, diagonally shifted into strict dominance
    (hence SPD).  Returns ``(matrix, rhs)`` as :class:`~repro.core.
    BatchCsr`.
    """
    from ..core import BatchCsr, to_format

    app = paper_app(num_mesh_nodes)
    matrix, f = app.build_matrices()
    dense = np.array(to_format(matrix, "dense").values, dtype=np.float64)
    sym = 0.5 * (dense + np.swapaxes(dense, 1, 2))
    i = np.arange(sym.shape[1])
    off = np.abs(sym).sum(axis=2) - np.abs(sym[:, i, i])
    sym[:, i, i] = off + 1.0
    return BatchCsr.from_dense(sym), f


@lru_cache(maxsize=4)
def measured_variant_iterations(num_mesh_nodes: int = 8):
    """Per-system iteration counts of each classic/pipelined variant.

    BiCGSTAB and its pipelined sibling run one real zero-guess solve of
    the collision batch; the CG pair (SPD-only theory) runs the
    :func:`spd_stencil_batch` surrogate.  Returns ``{solver_name:
    iterations}`` — the honest per-variant inputs for the crossover model
    (pipelined variants converge in slightly different counts, which the
    timing comparison must charge).
    """
    app = paper_app(num_mesh_nodes)
    matrix, f = app.build_matrices()
    spd, spd_f = spd_stencil_batch()
    problems = {
        "bicgstab": (matrix, f),
        "pipelined_bicgstab": (matrix, f),
        "cg": (spd, spd_f),
        "pipelined_cg": (spd, spd_f),
    }
    out = {}
    for name, (m, b) in problems.items():
        solver = make_solver(
            name, preconditioner="jacobi",
            criterion=AbsoluteResidual(1e-10), max_iter=500,
        )
        res = solver.solve(m, b)
        if not res.converged.all():
            raise RuntimeError(f"{name} failed to converge on the paper batch")
        out[name] = res.iterations
    return out


@lru_cache(maxsize=4)
def measured_picard(num_mesh_nodes: int = 8, warm_start: bool = True):
    """One real Picard step; returns (app, PicardStepResult)."""
    app = paper_app(num_mesh_nodes)
    if warm_start:
        stepper = app.stepper
    else:
        stepper = PicardStepper(
            app.config.grid,
            app.masses,
            nu_ref=app.config.nu_ref,
            eta=app.config.eta,
            kurtosis_gamma=app.config.kurtosis_gamma,
            options=PicardOptions(warm_start=False),
            stencil=app.stencil,
        )
    f0 = app.initial_state()
    return app, stepper.step(f0, app.config.dt)


def tile_iterations(iterations: np.ndarray, nb: int) -> np.ndarray:
    """Repeat a measured iteration-count vector out to batch size ``nb``."""
    return np.tile(iterations, nb // iterations.size + 1)[:nb]
