"""Evaluation harness: price a :class:`TuneConfig` on the GPU cost model.

ArchGym-style separation: the *environment* owns the problem (a
:class:`TuneScenario` — pattern statistics plus measured per-solver
convergence) and the hardware, the *agents* (:mod:`repro.tune.agents`)
own the search.  One :meth:`CostModelEnv.evaluate` call prices one
configuration through :func:`repro.gpu.timing.estimate_iterative_solve`
with the config's format, solver schedule, precision (``value_bytes``),
restart and §IV-D shared-memory budget — exactly the numbers the hand
rules consult, so "searched beats hand rules" is apples-to-apples.

Evaluations are memoized (the space is finite and agents revisit
points), and the environment counts true cost-model evaluations
separately from cache hits so the throughput gate in
``benchmarks/bench_autotune.py`` measures real model work.  Throughput
matters: a search budget of a few hundred evaluations per (hardware,
batch) cell is only practical because the memoized schedule/kernel-work
layers price one configuration in well under a millisecond.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.hardware import GpuSpec
from ..gpu.timing import GpuSolveEstimate, estimate_iterative_solve
from .space import ConfigSpace, TuneConfig, space_for_scenario

__all__ = [
    "CostModelEnv",
    "OPERATOR_ITERATIONS",
    "TuneScenario",
    "XGC_ITERATIONS",
    "exhaustive_best",
    "named_scenario",
    "scenario_names",
    "tridiag_operator_scenario",
    "xgc_scenario",
]

#: Measured batch-mean iteration counts of each solver on the collision
#: batch (zero guess, Jacobi, |r| <= 1e-10; the CG pair runs the SPD
#: stencil surrogate) — the convergence inputs the gym charges.  Pinned
#: from :func:`repro.experiments.common.measured_variant_iterations` so
#: scenario construction stays cheap and deterministic; re-measure live
#: with ``xgc_scenario(measured=True)``.
XGC_ITERATIONS = (
    ("bicgstab", 23.0),
    ("pipelined_bicgstab", 23.0),
    ("cgs", 31.6),
    ("gmres", 37.9),
)


@dataclass(frozen=True)
class TuneScenario:
    """A tuning problem: pattern statistics + per-solver convergence.

    Frozen and hashable so environments can key caches on it.  The
    per-solver iteration counts and per-format stored sizes live as
    tuples of pairs (dict-like access via :meth:`iteration_count` /
    :meth:`stored_entries`).

    Attributes
    ----------
    name:
        Scenario key — also the policy-lookup key component.
    num_rows, nnz:
        Per-system dimensions (true non-zeros).
    iterations:
        ``((solver, batch-mean iterations), ...)`` — measured
        convergence of every admissible solver at the target tolerance.
    stored_nnz:
        ``((fmt, stored entries per system), ...)`` for padded formats;
        formats not listed store ``nnz`` (CSR).
    solvers, formats:
        Validity masks (see :func:`~repro.tune.space.space_for_scenario`).
    allow_fp32, allow_mixed:
        Precision gates: pure fp32 only when it reaches the scenario's
        tolerance; mixed (fp32 streaming + fp64 correction) separately.
    mixed_iteration_overhead:
        Multiplier on iteration counts under the mixed policy — the
        fp64 residual-correction sweeps the refinement wrapper adds.
    preconditioner:
        Preconditioner charged per iteration.
    nnz_row_min, nnz_row_max:
        Row-population extremes (the hand rules' inputs).
    padding_fraction, num_diags, dia_padding_fraction:
        Pattern statistics the hand-rule format choice consumes.
    """

    name: str
    num_rows: int
    nnz: int
    iterations: tuple
    stored_nnz: tuple = ()
    solvers: tuple = ("bicgstab", "pipelined_bicgstab", "cgs", "gmres")
    formats: tuple = ("csr", "ell", "dia")
    allow_fp32: bool = False
    allow_mixed: bool = True
    mixed_iteration_overhead: float = 1.1
    preconditioner: str = "jacobi"
    nnz_row_min: int = 1
    nnz_row_max: int = 1
    padding_fraction: float = 0.0
    num_diags: int = 0
    dia_padding_fraction: float = 0.0

    def iteration_count(self, solver: str) -> float:
        """Batch-mean iterations of ``solver`` (ValueError if unknown)."""
        for name, its in self.iterations:
            if name == solver:
                return float(its)
        raise ValueError(
            f"scenario {self.name!r} has no measured iterations for "
            f"{solver!r}"
        )

    def stored_entries(self, fmt: str):
        """Stored entries per system in ``fmt`` (None means ``nnz``)."""
        for name, stored in self.stored_nnz:
            if name == fmt:
                return int(stored)
        return None

    def to_dict(self) -> dict:
        """JSON-ready representation (stable keys, plain types)."""
        return {
            "name": self.name,
            "num_rows": int(self.num_rows),
            "nnz": int(self.nnz),
            "iterations": [[s, float(v)] for s, v in self.iterations],
            "stored_nnz": [[f, int(v)] for f, v in self.stored_nnz],
            "solvers": list(self.solvers),
            "formats": list(self.formats),
            "allow_fp32": bool(self.allow_fp32),
            "allow_mixed": bool(self.allow_mixed),
            "mixed_iteration_overhead": float(self.mixed_iteration_overhead),
            "preconditioner": self.preconditioner,
            "nnz_row_min": int(self.nnz_row_min),
            "nnz_row_max": int(self.nnz_row_max),
            "padding_fraction": float(self.padding_fraction),
            "num_diags": int(self.num_diags),
            "dia_padding_fraction": float(self.dia_padding_fraction),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneScenario":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        data = dict(data)
        data["iterations"] = tuple(
            (s, float(v)) for s, v in data["iterations"])
        data["stored_nnz"] = tuple(
            (f, int(v)) for f, v in data["stored_nnz"])
        data["solvers"] = tuple(data["solvers"])
        data["formats"] = tuple(data["formats"])
        return cls(**data)


def xgc_scenario(*, measured: bool = False) -> TuneScenario:
    """The canonical scenario: the paper's XGC collision batch.

    992-row systems on the 9-point velocity-space stencil; ELL and DIA
    both store the 9 constant diagonals (8928 entries, ~4% fringe
    padding).  With ``measured=True`` the per-solver iteration counts are
    re-measured by real host solves instead of the pinned defaults.
    """
    iterations = XGC_ITERATIONS
    if measured:
        from ..core.solvers import make_solver
        from ..core.stop import AbsoluteResidual
        from ..experiments.common import paper_app

        app = paper_app(8)
        matrix, rhs = app.build_matrices()
        measured_its = []
        for solver, _ in XGC_ITERATIONS:
            res = make_solver(
                solver, preconditioner="jacobi",
                criterion=AbsoluteResidual(1e-10), max_iter=500,
            ).solve(matrix, rhs)
            measured_its.append(
                (solver, float(np.asarray(res.iterations).mean())))
        iterations = tuple(measured_its)
    return TuneScenario(
        name="xgc",
        num_rows=992,
        nnz=8832,
        iterations=iterations,
        stored_nnz=(("ell", 8928), ("dia", 8928)),
        nnz_row_min=4,
        nnz_row_max=9,
        padding_fraction=0.042,
        num_diags=9,
        dia_padding_fraction=0.042,
    )


#: Pinned batch-mean iteration counts of the operator-zoo scenarios
#: (Jacobi, |r| <= 1e-10, default scenario builds) — measured by
#: :func:`repro.xgc.scenarios.run_operator_scenario`; re-measure live
#: with ``tridiag_operator_scenario(name, measured=True)``.
OPERATOR_ITERATIONS = {
    "lenard_bernstein": (
        ("bicgstab", 11.0),
        ("pipelined_bicgstab", 11.0),
        ("cgs", 61.125),
        ("gmres", 14.0),
    ),
    "dougherty": (
        ("bicgstab", 19.375),
        ("pipelined_bicgstab", 19.375),
        ("cgs", 20.625),
        ("gmres", 29.25),
    ),
    "landau": (
        ("bicgstab", 16.9),
        ("pipelined_bicgstab", 16.9),
        ("cgs", 16.25),
        ("gmres", 23.25),
    ),
}


def tridiag_operator_scenario(
    name: str, *, measured: bool = False
) -> TuneScenario:
    """A tuning scenario for one operator-zoo workload (PR 10).

    The batched Dougherty / Lenard-Bernstein / multi-species Landau
    systems are tridiagonal: 64 rows, 190 true non-zeros, 3 constant
    diagonals.  Their validity masks differ from the XGC stencil's — ELL
    buys nothing over DIA on a fixed 3-diagonal pattern, so the format
    mask is ``("csr", "dia")``, and the fixed-coefficient
    Lenard-Bernstein relaxation tolerates pure fp32 while the
    self-consistent operators do not.  With ``measured=True`` the
    iteration counts are re-measured by real host solves of the
    scenario's default build.
    """
    if name not in OPERATOR_ITERATIONS:
        raise ValueError(
            f"unknown operator scenario {name!r}; "
            f"choices: {sorted(OPERATOR_ITERATIONS)}"
        )
    iterations = OPERATOR_ITERATIONS[name]
    if measured:
        from ..core.solvers import make_solver
        from ..core.stop import AbsoluteResidual
        from ..xgc.scenarios import OPERATOR_SCENARIOS

        op, f0 = OPERATOR_SCENARIOS[name].build()
        matrix = op.matrix("csr")
        measured_its = []
        for solver, _ in iterations:
            res = make_solver(
                solver, preconditioner="jacobi",
                criterion=AbsoluteResidual(1e-10), max_iter=500,
            ).solve(matrix, f0)
            measured_its.append(
                (solver, float(np.asarray(res.iterations).mean())))
        iterations = tuple(measured_its)
    nv = 64
    return TuneScenario(
        name=name,
        num_rows=nv,
        nnz=3 * nv - 2,
        iterations=iterations,
        stored_nnz=(("dia", 3 * nv),),
        formats=("csr", "dia"),
        allow_fp32=(name == "lenard_bernstein"),
        nnz_row_min=2,
        nnz_row_max=3,
        num_diags=3,
        dia_padding_fraction=2.0 / (3 * nv),
    )


def scenario_names() -> tuple:
    """Every named scenario :func:`named_scenario` resolves."""
    return ("xgc",) + tuple(sorted(OPERATOR_ITERATIONS))


def named_scenario(name: str) -> TuneScenario:
    """Resolve a scenario identity string to its :class:`TuneScenario`.

    This is the lookup the service coalescer and ``tune_for_matrix`` use
    when a request carries only a scenario *name*.
    """
    if name == "xgc":
        return xgc_scenario()
    return tridiag_operator_scenario(name)


@dataclass
class CostModelEnv:
    """Memoized pricing of configurations for one (GPU, scenario, batch).

    ``evaluate`` returns the modelled wall-clock of the whole batch in
    seconds; ``estimate`` exposes the full :class:`GpuSolveEstimate`.
    ``evaluations`` counts true cost-model evaluations (cache misses),
    ``lookups`` counts every request — the gap is the memoization win.
    """

    hw: GpuSpec
    scenario: TuneScenario
    num_batch: int
    fused: bool = True
    evaluations: int = 0
    lookups: int = 0
    _cache: dict = field(default_factory=dict, repr=False)

    def space(self) -> ConfigSpace:
        """The valid configuration space of this environment's scenario."""
        return space_for_scenario(self.scenario)

    def _price(self, config: TuneConfig) -> tuple:
        sc = self.scenario
        iters = sc.iteration_count(config.solver)
        if config.precision == "mixed":
            # fp64 residual-correction sweeps on top of the fp32 inner
            # iterations — charged so mixed only wins where the halved
            # traffic outruns the extra work.
            iters *= sc.mixed_iteration_overhead
        iterations = np.full(self.num_batch, float(iters))
        est = estimate_iterative_solve(
            self.hw, config.fmt, sc.num_rows, sc.nnz, iterations,
            stored_nnz=sc.stored_entries(config.fmt),
            solver=config.solver,
            preconditioner=sc.preconditioner,
            gmres_restart=config.gmres_restart,
            value_bytes=config.value_bytes,
            fused=self.fused,
            shared_budget_bytes=self.hw.shared_budget_per_block(
                config.target_blocks_per_cu),
        )
        cost = est.total_time_s
        if config.compaction_threshold > 0.0:
            # One compaction pass: relaunch the kernel plus stream the
            # active solution/RHS vectors through the gather.  With the
            # scenario's uniform batch-mean convergence no system retires
            # early, so this is pure overhead — the gym should learn to
            # switch compaction off here, and a spread-iteration scenario
            # would price a benefit instead.
            copy_bytes = 2 * sc.num_rows * config.value_bytes * self.num_batch
            cost += (self.hw.launch_overhead_us * 1e-6
                     + copy_bytes / (self.hw.mem_bw_gbs * 1e9))
        return cost, est

    def evaluate(self, config: TuneConfig) -> float:
        """Modelled batch wall-clock [s] of ``config`` (memoized)."""
        self.lookups += 1
        hit = self._cache.get(config)
        if hit is None:
            self.evaluations += 1
            hit = self._price(config)
            self._cache[config] = hit
        return hit[0]

    def estimate(self, config: TuneConfig) -> GpuSolveEstimate:
        """Full modelled execution of ``config`` (memoized)."""
        self.evaluate(config)
        return self._cache[config][1]


def exhaustive_best(env: CostModelEnv, space: ConfigSpace | None = None):
    """True argmin over the whole space: ``(config, cost)``.

    Deterministic tie-break: the first minimum in the space's canonical
    enumeration order wins, so searched-vs-exhaustive comparisons compare
    *costs*, never identities of cost-tied configs.
    """
    if space is None:
        space = env.space()
    best, best_cost = None, float("inf")
    for config in space.enumerate():
        cost = env.evaluate(config)
        if cost < best_cost:
            best, best_cost = config, cost
    return best, best_cost
