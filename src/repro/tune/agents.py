"""Search agents over the configuration space (ArchGym-style).

Three agents with one contract — ``search(env, space, ...) ->
SearchResult`` — covering the classic trade-offs:

* :class:`RandomSearchAgent` — uniform i.i.d. sampling; the unbiased
  baseline every smarter agent has to beat.
* :class:`HillClimbAgent` — single-mutation hill climbing with an
  optional simulated-annealing acceptance of uphill moves (temperature
  decays geometrically), restarted from fresh samples when stuck.
* :class:`GeneticAgent` — small steady-state GA: tournament selection,
  uniform crossover, single-dimension mutation, elitism.

Every agent draws exclusively from its own ``numpy.random.default_rng``
seed — no global RNG, no wall clock — so a (seed, budget, space,
environment) tuple reproduces the identical trajectory bit-for-bit.
Agents accept a ``seed_config`` (typically the hand-rule decision mapped
into the space): it is evaluated first, which guarantees the searched
result is never worse than the baseline it started from.

Trajectories stream to a :class:`TrajectoryLogger` (JSONL: one record
per evaluation with the running best) for the fig-style regret plots and
the CI artifact upload.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

import numpy as np

from .env import CostModelEnv
from .space import ConfigSpace, TuneConfig

__all__ = [
    "GeneticAgent",
    "HillClimbAgent",
    "RandomSearchAgent",
    "SearchResult",
    "TrajectoryLogger",
]


class TrajectoryLogger:
    """Collects one record per evaluation; serialises to JSONL.

    Each record: ``{"agent", "step", "cost", "best_cost", "config"}``.
    """

    def __init__(self):
        self.records = []

    def record(self, agent: str, step: int, config: TuneConfig,
               cost: float, best_cost: float) -> None:
        self.records.append({
            "agent": agent,
            "step": int(step),
            "cost": float(cost),
            "best_cost": float(best_cost),
            "config": config.to_dict(),
        })

    def save(self, path) -> None:
        """Write all records as JSON Lines."""
        with open(path, "w") as fh:
            for rec in self.records:
                fh.write(json.dumps(rec) + "\n")

    def best_curve(self, agent: str | None = None):
        """Running-best cost per step (optionally one agent's)."""
        return [rec["best_cost"] for rec in self.records
                if agent is None or rec["agent"] == agent]


@dataclass
class SearchResult:
    """Outcome of one agent run.

    ``history`` holds ``(step, cost, config)`` per evaluation — enough
    to recompute the regret curve without the logger.
    """

    agent: str
    best_config: TuneConfig
    best_cost: float
    evaluations: int
    history: list = field(default_factory=list)

    def regret_curve(self, optimum_cost: float):
        """Running best minus the true optimum, per evaluation."""
        best = float("inf")
        curve = []
        for _, cost, _ in self.history:
            best = min(best, cost)
            curve.append(best - optimum_cost)
        return curve


class _AgentBase:
    """Shared bookkeeping: seeded RNG, budget, logging, running best."""

    name = "agent"

    def __init__(self, *, budget: int = 128, seed: int = 0):
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.budget = int(budget)
        self.seed = int(seed)

    def _start(self, logger):
        self._rng = np.random.default_rng(self.seed)
        self._logger = logger
        self._result = SearchResult(
            agent=self.name, best_config=None, best_cost=float("inf"),
            evaluations=0,
        )

    def _eval(self, env: CostModelEnv, config: TuneConfig) -> float:
        r = self._result
        cost = env.evaluate(config)
        r.evaluations += 1
        if cost < r.best_cost:
            r.best_cost, r.best_config = cost, config
        r.history.append((r.evaluations, cost, config))
        if self._logger is not None:
            self._logger.record(
                self.name, r.evaluations, config, cost, r.best_cost)
        return cost

    def _spent(self) -> bool:
        return self._result.evaluations >= self.budget


class RandomSearchAgent(_AgentBase):
    """Uniform i.i.d. sampling of valid configurations."""

    name = "random"

    def search(self, env: CostModelEnv, space: ConfigSpace, *,
               seed_config: TuneConfig | None = None,
               logger: TrajectoryLogger | None = None) -> SearchResult:
        self._start(logger)
        if seed_config is not None:
            self._eval(env, seed_config)
        while not self._spent():
            self._eval(env, space.sample(self._rng))
        return self._result


class HillClimbAgent(_AgentBase):
    """Single-mutation hill climbing with simulated-annealing acceptance.

    ``temperature=0`` is a pure greedy climber; otherwise uphill moves of
    size ``d`` are accepted with probability ``exp(-d / T)`` and ``T``
    decays by ``cooling`` per step.  After ``patience`` consecutive
    rejected moves the climb restarts from a fresh uniform sample (the
    running best is never forgotten).
    """

    name = "hillclimb"

    def __init__(self, *, budget: int = 128, seed: int = 0,
                 temperature: float = 0.0, cooling: float = 0.95,
                 patience: int = 12):
        super().__init__(budget=budget, seed=seed)
        if temperature < 0.0:
            raise ValueError("temperature must be >= 0")
        self.temperature = float(temperature)
        self.cooling = float(cooling)
        self.patience = int(patience)

    def search(self, env: CostModelEnv, space: ConfigSpace, *,
               seed_config: TuneConfig | None = None,
               logger: TrajectoryLogger | None = None) -> SearchResult:
        self._start(logger)
        current = (seed_config if seed_config is not None
                   else space.sample(self._rng))
        current_cost = self._eval(env, current)
        temp = self.temperature
        stuck = 0
        while not self._spent():
            candidate = space.mutate(current, self._rng)
            cost = self._eval(env, candidate)
            accept = cost <= current_cost
            if not accept and temp > 0.0:
                accept = self._rng.random() < math.exp(
                    -(cost - current_cost) / (temp * max(current_cost, 1e-30)))
            if accept:
                current, current_cost = candidate, cost
                stuck = 0
            else:
                stuck += 1
                if stuck >= self.patience and not self._spent():
                    current = space.sample(self._rng)
                    current_cost = self._eval(env, current)
                    stuck = 0
            temp *= self.cooling
        return self._result


class GeneticAgent(_AgentBase):
    """Small generational GA with elitism and tournament selection."""

    name = "genetic"

    def __init__(self, *, budget: int = 128, seed: int = 0,
                 population: int = 12, elite: int = 2,
                 mutation_rate: float = 0.4, tournament: int = 3):
        super().__init__(budget=budget, seed=seed)
        if population < 2:
            raise ValueError("population must be >= 2")
        self.population = int(population)
        self.elite = max(0, min(int(elite), self.population - 1))
        self.mutation_rate = float(mutation_rate)
        self.tournament = max(2, int(tournament))

    def _select(self, scored):
        rng = self._rng
        k = min(self.tournament, len(scored))
        picks = rng.choice(len(scored), size=k, replace=False)
        return min((scored[int(i)] for i in picks), key=lambda sc: sc[1])[0]

    def search(self, env: CostModelEnv, space: ConfigSpace, *,
               seed_config: TuneConfig | None = None,
               logger: TrajectoryLogger | None = None) -> SearchResult:
        self._start(logger)
        pop = []
        if seed_config is not None:
            pop.append(seed_config)
        while len(pop) < self.population:
            pop.append(space.sample(self._rng))
        scored = [(c, self._eval(env, c)) for c in pop[:self.budget]]
        while not self._spent():
            scored.sort(key=lambda sc: sc[1])
            children = [c for c, _ in scored[:self.elite]]
            while len(children) < self.population:
                child = space.crossover(
                    self._select(scored), self._select(scored), self._rng)
                if self._rng.random() < self.mutation_rate:
                    child = space.mutate(child, self._rng)
                children.append(child)
            scored = []
            for child in children:
                if self._spent():
                    break
                scored.append((child, self._eval(env, child)))
            if not scored:
                break
        return self._result
