"""Typed configuration space for the autotuning gym.

The hand rules in :mod:`repro.gpu.tuning` pick one point — format from the
pattern, pipelined variant from the batch size, fp64, the hardware's
default shared-memory residency.  The gym instead searches the full cross
product

    solver × format × precision × gmres_restart × residency × compaction

over the same analytic GPU cost model that the hand rules consult.  This
module is the *space*: a frozen, hashable :class:`TuneConfig` point type
with a stable dict round-trip, and a :class:`ConfigSpace` that knows which
points are valid for a scenario, can enumerate/sample them, and provides
the mutation/crossover moves the search agents use.

Validity is per-scenario: the XGC collision batch is diagonal-structured
(DIA applies) and the mixed policy's fp64 residual correction is pinned
to Picard parity, but pure fp32 cannot reach the 1e-10 tolerance, so an
XGC space masks ``"fp32"`` out.  A restart length only distinguishes
GMRES-family configurations, so every non-GMRES config carries the
canonical restart — without that rule the same physical configuration
would appear once per restart choice and inflate the space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.precision import POLICIES, precision_policy
from ..core.solvers.schedule import solver_schedule

__all__ = [
    "CANONICAL_RESTART",
    "COMPACTION_CHOICES",
    "FORMAT_CHOICES",
    "RESIDENCY_CHOICES",
    "RESTART_CHOICES",
    "ConfigSpace",
    "TuneConfig",
    "space_for_scenario",
]

#: Batched matrix formats the kernels implement (Section IV-A/IV-E).
FORMAT_CHOICES = ("csr", "ell", "dia")

#: GMRES restart lengths worth distinguishing: the restart sizes the
#: Krylov basis the §IV-D placement must hold, so it trades convergence
#: against shared-memory residency.
RESTART_CHOICES = (10, 30, 60)

#: Restart carried by every non-GMRES configuration (ignored by the
#: solver, kept canonical so configs stay unique).
CANONICAL_RESTART = 30

#: Shared-memory residency targets: the §IV-D budget is the per-CU shared
#: memory divided by the target, so 1 block/CU gets the whole scratchpad
#: (most vectors resident, least latency hiding) while 4 blocks/CU spill
#: more vectors but overlap more blocks.
RESIDENCY_CHOICES = (1, 2, 4)

#: Batch-compaction thresholds: re-compact the active batch once the
#: active fraction drops below the threshold (0 disables).  Priced as a
#: relaunch + copy overhead by the evaluation harness.
COMPACTION_CHOICES = (0.0, 0.25, 0.5)


@dataclass(frozen=True)
class TuneConfig:
    """One point of the autotuning space (frozen, hashable).

    Attributes
    ----------
    solver:
        Solver-variant name from the :mod:`~repro.core.solvers.schedule`
        registry (``"bicgstab"``, ``"pipelined_bicgstab"``, ...).
    fmt:
        Matrix format (``"csr"``, ``"ell"``, ``"dia"``).
    precision:
        Precision-policy name (``"fp64"``, ``"fp32"``, ``"mixed"``).
    gmres_restart:
        Restart length; meaningful for the GMRES family, canonical
        (:data:`CANONICAL_RESTART`) otherwise.
    target_blocks_per_cu:
        Residency target that sizes the §IV-D shared-memory budget.
    compaction_threshold:
        Active-fraction threshold below which the batch is re-compacted
        (0 disables compaction).
    backend:
        Array backend the config executes on (``"numpy"`` default,
        ``"jax"``).  Carried through tuning records so a decision is
        reproducible on the backend it was made for; not a searched
        dimension — the cost model prices the modelled GPU either way.
    """

    solver: str
    fmt: str
    precision: str
    gmres_restart: int = CANONICAL_RESTART
    target_blocks_per_cu: int = 2
    compaction_threshold: float = 0.0
    backend: str = "numpy"

    @property
    def value_bytes(self) -> int:
        """Bytes per stored value under this config's precision policy."""
        return precision_policy(self.precision).value_bytes

    def to_dict(self) -> dict:
        """JSON-ready representation (stable keys, plain types)."""
        return {
            "solver": self.solver,
            "fmt": self.fmt,
            "precision": self.precision,
            "gmres_restart": int(self.gmres_restart),
            "target_blocks_per_cu": int(self.target_blocks_per_cu),
            "compaction_threshold": float(self.compaction_threshold),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneConfig":
        """Inverse of :meth:`to_dict` (exact round-trip).

        ``backend`` defaults to ``"numpy"`` so records written before the
        field existed load unchanged.
        """
        return cls(
            solver=data["solver"],
            fmt=data["fmt"],
            precision=data["precision"],
            gmres_restart=int(data["gmres_restart"]),
            target_blocks_per_cu=int(data["target_blocks_per_cu"]),
            compaction_threshold=float(data["compaction_threshold"]),
            backend=data.get("backend", "numpy"),
        )


def _is_gmres(solver: str) -> bool:
    return "gmres" in solver


@dataclass(frozen=True)
class ConfigSpace:
    """The searchable cross product with its validity mask.

    Each attribute lists the admissible values of one dimension; a config
    is valid when every field is drawn from its dimension AND the restart
    rule holds (non-GMRES solvers carry :data:`CANONICAL_RESTART`).
    """

    solvers: tuple = ("bicgstab", "pipelined_bicgstab", "cgs", "gmres")
    formats: tuple = FORMAT_CHOICES
    precisions: tuple = ("fp64", "mixed")
    gmres_restarts: tuple = RESTART_CHOICES
    residency_targets: tuple = RESIDENCY_CHOICES
    compaction_thresholds: tuple = COMPACTION_CHOICES

    def __post_init__(self):
        for solver in self.solvers:
            solver_schedule(solver)  # raises on unknown names
        for precision in self.precisions:
            if precision not in POLICIES:
                raise ValueError(f"unknown precision {precision!r}")
        for fmt in self.formats:
            if fmt not in FORMAT_CHOICES:
                raise ValueError(f"unknown format {fmt!r}")

    # -- membership ---------------------------------------------------
    def is_valid(self, config: TuneConfig) -> bool:
        """Whether ``config`` lies in this space (mask included)."""
        if config.solver not in self.solvers:
            return False
        if config.fmt not in self.formats:
            return False
        if config.precision not in self.precisions:
            return False
        if config.target_blocks_per_cu not in self.residency_targets:
            return False
        if config.compaction_threshold not in self.compaction_thresholds:
            return False
        if _is_gmres(config.solver):
            return config.gmres_restart in self.gmres_restarts
        return config.gmres_restart == CANONICAL_RESTART

    def _restarts_for(self, solver: str) -> tuple:
        return self.gmres_restarts if _is_gmres(solver) else (CANONICAL_RESTART,)

    def size(self) -> int:
        """Number of valid configurations."""
        solver_combos = sum(len(self._restarts_for(s)) for s in self.solvers)
        return (
            solver_combos * len(self.formats) * len(self.precisions)
            * len(self.residency_targets) * len(self.compaction_thresholds)
        )

    def enumerate(self):
        """Yield every valid configuration (deterministic order)."""
        for solver in self.solvers:
            for restart in self._restarts_for(solver):
                for fmt in self.formats:
                    for precision in self.precisions:
                        for target in self.residency_targets:
                            for thr in self.compaction_thresholds:
                                yield TuneConfig(
                                    solver=solver, fmt=fmt,
                                    precision=precision,
                                    gmres_restart=restart,
                                    target_blocks_per_cu=target,
                                    compaction_threshold=thr,
                                )

    # -- stochastic moves (all take an explicit Generator: no global RNG)
    def sample(self, rng) -> TuneConfig:
        """Draw one valid configuration uniformly over the dimensions."""
        solver = str(rng.choice(self.solvers))
        restarts = self._restarts_for(solver)
        return TuneConfig(
            solver=solver,
            fmt=str(rng.choice(self.formats)),
            precision=str(rng.choice(self.precisions)),
            gmres_restart=int(rng.choice(restarts)),
            target_blocks_per_cu=int(rng.choice(self.residency_targets)),
            compaction_threshold=float(rng.choice(self.compaction_thresholds)),
        )

    def mutate(self, config: TuneConfig, rng) -> TuneConfig:
        """Change exactly one dimension to a different admissible value.

        Mutating the solver re-canonicalises the restart (a GMRES restart
        is meaningless on BiCGSTAB and vice versa), so the result is
        always valid.
        """
        dims = ["solver", "fmt", "precision", "target_blocks_per_cu",
                "compaction_threshold"]
        if _is_gmres(config.solver) and len(self.gmres_restarts) > 1:
            dims.append("gmres_restart")
        candidates = {
            "solver": self.solvers,
            "fmt": self.formats,
            "precision": self.precisions,
            "target_blocks_per_cu": self.residency_targets,
            "compaction_threshold": self.compaction_thresholds,
            "gmres_restart": self._restarts_for(config.solver),
        }
        # Only dimensions with an alternative value can move.
        dims = [d for d in dims
                if len([v for v in candidates[d]
                        if v != getattr(config, d)]) > 0]
        if not dims:
            return config
        dim = dims[int(rng.integers(len(dims)))]
        options = [v for v in candidates[dim] if v != getattr(config, dim)]
        new = replace(config, **{dim: options[int(rng.integers(len(options)))]})
        if dim == "solver":
            restarts = self._restarts_for(new.solver)
            if new.gmres_restart not in restarts:
                repaired = (int(rng.choice(restarts))
                            if _is_gmres(new.solver) else CANONICAL_RESTART)
                new = replace(new, gmres_restart=repaired)
        return new

    def crossover(self, a: TuneConfig, b: TuneConfig, rng) -> TuneConfig:
        """Uniform crossover: each dimension from one parent, repaired.

        The restart follows the chosen solver's parent when that keeps
        the config valid, and is re-canonicalised otherwise.
        """
        pick = lambda x, y: x if rng.random() < 0.5 else y  # noqa: E731
        solver = pick(a.solver, b.solver)
        restart = pick(a.gmres_restart, b.gmres_restart)
        restarts = self._restarts_for(solver)
        if restart not in restarts:
            restart = (int(rng.choice(restarts)) if _is_gmres(solver)
                       else CANONICAL_RESTART)
        return TuneConfig(
            solver=solver,
            fmt=pick(a.fmt, b.fmt),
            precision=pick(a.precision, b.precision),
            gmres_restart=restart,
            target_blocks_per_cu=pick(
                a.target_blocks_per_cu, b.target_blocks_per_cu),
            compaction_threshold=pick(
                a.compaction_threshold, b.compaction_threshold),
        )


def space_for_scenario(scenario) -> ConfigSpace:
    """Build the valid space for a :class:`~repro.tune.env.TuneScenario`.

    The scenario's masks drive the dimensions: its solver list (only
    solvers whose convergence it has iteration counts for), its format
    list (DIA only for diagonal-structured patterns), and its precision
    gates (``allow_fp32`` — pure single reaching the tolerance;
    ``allow_mixed`` — fp32 streaming with fp64 correction).  A scenario
    *name* (``"xgc"``, ``"dougherty"``, ``"lenard_bernstein"``,
    ``"landau"``) resolves through
    :func:`~repro.tune.env.named_scenario` first.
    """
    if isinstance(scenario, str):
        from .env import named_scenario

        scenario = named_scenario(scenario)
    precisions = ["fp64"]
    if scenario.allow_fp32:
        precisions.append("fp32")
    if scenario.allow_mixed:
        precisions.append("mixed")
    return ConfigSpace(
        solvers=tuple(scenario.solvers),
        formats=tuple(scenario.formats),
        precisions=tuple(precisions),
    )
