"""Distilled tuning policies: searched winners, keyed for deployment.

The gym's output is not a trajectory, it is a *policy*: for every
(hardware, system size, batch size, scenario) cell, the best
configuration the search found — never worse than the hand-rule
baseline, because every search is seeded with it.  The policy serialises
to ``best_configs.json`` and :func:`repro.gpu.tuning.tune_for_matrix`
consults it (``policy=...``) before falling back to the hand rules, so a
production run can ship the JSON artifact without importing any of the
search machinery.
"""

from __future__ import annotations

import json

from dataclasses import dataclass, field

from .agents import HillClimbAgent, TrajectoryLogger
from .env import CostModelEnv, TuneScenario
from .space import TuneConfig, space_for_scenario

__all__ = [
    "PolicyEntry",
    "TuningPolicy",
    "baseline_config",
    "distill_policy",
]


def baseline_config(hw, scenario: TuneScenario, num_batch: int) -> TuneConfig:
    """Map the hand rules' decision for a scenario cell into the space.

    Runs :func:`repro.gpu.tuning.tune_batched_solver` on the scenario's
    pattern statistics and lifts the decision into a :class:`TuneConfig`:
    the hand-rule format and solver variant, fp64 (the hand rules never
    drop precision), the hardware's default residency target, compaction
    off.  Seeding any agent with this config makes "searched >= hand
    rules" true by construction on every cell.
    """
    from ..gpu.tuning import tune_batched_solver

    decision = tune_batched_solver(
        hw, scenario.num_rows, scenario.nnz_row_min, scenario.nnz_row_max,
        solver="bicgstab",
        value_bytes=8,
        padding_fraction=scenario.padding_fraction,
        num_diags=scenario.num_diags or None,
        dia_padding_fraction=scenario.dia_padding_fraction,
        num_batch=num_batch,
    )
    return TuneConfig(
        solver=decision.solver_variant or "bicgstab",
        fmt=decision.fmt,
        precision="fp64",
        target_blocks_per_cu=hw.target_blocks_per_cu,
    )


@dataclass(frozen=True)
class PolicyEntry:
    """One distilled cell: the winning config plus its provenance.

    ``cost``/``baseline_cost`` are the modelled batch wall-clocks of the
    searched winner and the hand-rule seed (same environment, same cost
    model) — kept in the artifact so a reader can audit each cell's win.
    """

    hardware: str
    num_rows: int
    num_batch: int
    scenario: str
    config: TuneConfig
    cost: float
    baseline_cost: float
    agent: str = "hillclimb"

    def to_dict(self) -> dict:
        return {
            "hardware": self.hardware,
            "num_rows": int(self.num_rows),
            "num_batch": int(self.num_batch),
            "scenario": self.scenario,
            "config": self.config.to_dict(),
            "cost": float(self.cost),
            "baseline_cost": float(self.baseline_cost),
            "agent": self.agent,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PolicyEntry":
        return cls(
            hardware=data["hardware"],
            num_rows=int(data["num_rows"]),
            num_batch=int(data["num_batch"]),
            scenario=data["scenario"],
            config=TuneConfig.from_dict(data["config"]),
            cost=float(data["cost"]),
            baseline_cost=float(data["baseline_cost"]),
            agent=data.get("agent", "unknown"),
        )


@dataclass
class TuningPolicy:
    """Lookup table of searched winners, JSON round-trippable."""

    entries: dict = field(default_factory=dict)

    @staticmethod
    def key_for(hardware: str, num_rows: int, num_batch: int,
                scenario: str) -> str:
        """Stable cell key: ``"<hw>|n<rows>|b<batch>|<scenario>"``."""
        return f"{hardware}|n{int(num_rows)}|b{int(num_batch)}|{scenario}"

    def add(self, entry: PolicyEntry) -> None:
        self.entries[self.key_for(
            entry.hardware, entry.num_rows, entry.num_batch,
            entry.scenario)] = entry

    def lookup(self, hardware: str, num_rows: int, num_batch: int,
               scenario: str) -> TuneConfig | None:
        """The searched config for a cell, or ``None`` (→ hand rules)."""
        entry = self.entries.get(
            self.key_for(hardware, num_rows, num_batch, scenario))
        return None if entry is None else entry.config

    def entry(self, hardware: str, num_rows: int, num_batch: int,
              scenario: str) -> PolicyEntry | None:
        """The full cell entry (config + audited costs), or ``None``."""
        return self.entries.get(
            self.key_for(hardware, num_rows, num_batch, scenario))

    def __len__(self) -> int:
        return len(self.entries)

    def to_dict(self) -> dict:
        return {
            "format": "repro-tuning-policy-v1",
            "entries": {k: e.to_dict() for k, e in sorted(
                self.entries.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuningPolicy":
        policy = cls()
        for key, raw in data.get("entries", {}).items():
            policy.entries[key] = PolicyEntry.from_dict(raw)
        return policy

    def save(self, path) -> None:
        """Write the policy as ``best_configs.json``-style JSON."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "TuningPolicy":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))


def distill_policy(
    hardware,
    scenario: TuneScenario,
    batch_sizes,
    *,
    agent_factory=None,
    budget: int = 160,
    seed: int = 0,
    logger: TrajectoryLogger | None = None,
) -> TuningPolicy:
    """Search every (GPU, batch) cell and distill the winners.

    ``hardware`` is an iterable of :class:`~repro.gpu.hardware.GpuSpec`.
    Each cell's search is seeded with :func:`baseline_config` (hand
    rules) and a per-cell derived RNG seed, so the distilled policy is
    deterministic and never loses to the hand rules.  ``agent_factory``
    builds the agent per cell (``agent_factory(budget, seed)``); the
    default is an annealed :class:`HillClimbAgent`.
    """
    if agent_factory is None:
        def agent_factory(budget, seed):
            return HillClimbAgent(budget=budget, seed=seed, temperature=0.05)

    space = space_for_scenario(scenario)
    policy = TuningPolicy()
    for i, hw in enumerate(hardware):
        for j, num_batch in enumerate(batch_sizes):
            env = CostModelEnv(hw, scenario, int(num_batch))
            base = baseline_config(hw, scenario, int(num_batch))
            base_cost = env.evaluate(base)
            agent = agent_factory(budget, seed + 1000 * i + j)
            result = agent.search(env, space, seed_config=base,
                                  logger=logger)
            policy.add(PolicyEntry(
                hardware=hw.name,
                num_rows=scenario.num_rows,
                num_batch=int(num_batch),
                scenario=scenario.name,
                config=result.best_config,
                cost=result.best_cost,
                baseline_cost=base_cost,
                agent=agent.name,
            ))
    return policy
