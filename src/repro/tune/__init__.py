"""Autotuning gym: searched solver configuration over the GPU cost model.

The hand rules in :mod:`repro.gpu.tuning` encode the paper's automatic
tuning strategy.  This package *searches* the same decision space — in
ArchGym style — against the identical analytic cost model:

* :mod:`~repro.tune.space` — the typed configuration space (solver ×
  format × precision × restart × shared-memory residency × compaction)
  with per-scenario validity masks;
* :mod:`~repro.tune.env` — the evaluation harness pricing configs via
  :func:`repro.gpu.timing.estimate_iterative_solve` (memoized, counted);
* :mod:`~repro.tune.agents` — seeded random / hill-climbing / genetic
  search with JSONL trajectory logging;
* :mod:`~repro.tune.policy` — distilled ``best_configs.json`` policies
  that :func:`repro.gpu.tuning.tune_for_matrix` consults before its hand
  rules.

Every search is seeded with the hand-rule baseline, so a distilled
policy is never worse than the rules it replaces — and the CI gate in
``benchmarks/bench_autotune.py`` enforces exactly that on the Table-I
hardware grid.
"""

from .agents import (
    GeneticAgent,
    HillClimbAgent,
    RandomSearchAgent,
    SearchResult,
    TrajectoryLogger,
)
from .env import (
    CostModelEnv,
    TuneScenario,
    exhaustive_best,
    named_scenario,
    scenario_names,
    tridiag_operator_scenario,
    xgc_scenario,
)
from .policy import PolicyEntry, TuningPolicy, baseline_config, distill_policy
from .space import ConfigSpace, TuneConfig, space_for_scenario

__all__ = [
    "ConfigSpace",
    "CostModelEnv",
    "GeneticAgent",
    "HillClimbAgent",
    "PolicyEntry",
    "RandomSearchAgent",
    "SearchResult",
    "TrajectoryLogger",
    "TuneConfig",
    "TuneScenario",
    "TuningPolicy",
    "baseline_config",
    "distill_policy",
    "exhaustive_best",
    "named_scenario",
    "scenario_names",
    "space_for_scenario",
    "tridiag_operator_scenario",
    "xgc_scenario",
]
