"""Dynamic request coalescing: compatible solves become one hardware batch.

The GPU cost model is brutally clear about why this layer exists: on a
V100 the fused BiCGSTAB kernel costs the *same* wall-clock for 1 system as
for 64 (the batch rides along on idle block slots), so dispatching requests
one by one wastes ~98% of the device.  The coalescer groups admitted
requests by a :class:`CompatKey` — same system size, matrix format,
sparsity pattern, value dtype, tolerance and solver variant — and flushes a
group as one concatenated batch when it reaches ``max_batch`` systems, when
its oldest request has waited ``max_wait_s``, or when the tightest deadline
in the group runs out of slack.

Compatibility is strict by design: every system in a flushed batch runs the
exact same solver configuration it would get from a direct ``solve()``
call, which is what keeps service-path numerics bit-identical per system
(the batched kernels compute each system independently along the batch
axis — the invariant active-batch compaction already pins).

The solver *variant* of a group is chosen once per key through
:func:`repro.gpu.tuning.tune_for_matrix` at the coalescing target batch
size: small-batch groups keep the sync-avoiding pipelined variants, large
ones the classic solvers — the same sync-aware trade the autotuning layer
prices.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from ..core.batch_csr import BatchCsr
from ..core.batch_dense import BatchDense
from ..core.batch_dia import BatchDia
from ..core.batch_ell import BatchEll
from ..gpu.hardware import GpuSpec
from ..gpu.tuning import tune_for_matrix
from .queue import SolveRequest, SolveTicket

__all__ = ["CoalescePolicy", "Coalescer", "CoalescedBatch", "CompatKey",
           "compat_key", "concat_requests"]


@dataclass(frozen=True)
class CompatKey:
    """What must match for two requests to share one hardware batch.

    ``scenario`` is the workload identity (``"xgc"``, ``"dougherty"``,
    ``"lenard_bernstein"``, ``"landau"``): requests from different
    operators never coalesce even when their patterns coincide, because
    the scenario drives the tuner's validity masks and searched-policy
    lookup — one batch must mean one tuning decision."""

    num_rows: int
    fmt: str
    dtype: str
    solver: str
    tolerance: float
    pattern_fp: str
    degraded: bool
    scenario: str = "xgc"


#: Pattern-fingerprint cache: ``id(pattern array) -> (array ref, digest)``.
#: The strong reference keeps the id stable while cached; the cache is
#: small because traffic shares a handful of pattern templates.
_FP_CACHE: dict[int, tuple[object, str]] = {}
_FP_CACHE_MAX = 64


def _fingerprint_array(arr: np.ndarray) -> str:
    key = id(arr)
    hit = _FP_CACHE.get(key)
    if hit is not None and hit[0] is arr:
        return hit[1]
    digest = hashlib.blake2b(
        np.ascontiguousarray(arr).tobytes(), digest_size=8
    ).hexdigest()
    if len(_FP_CACHE) >= _FP_CACHE_MAX:
        _FP_CACHE.clear()
    _FP_CACHE[key] = (arr, digest)
    return digest


#: Pattern arrays per format — the arrays whose *contents* define the
#: shared sparsity structure a coalesced batch must agree on.
_PATTERN_ATTRS = {
    BatchCsr: ("row_ptrs", "col_idxs"),
    BatchEll: ("col_idxs",),
    BatchDia: ("offsets",),
    BatchDense: (),
}


def _format_of(matrix) -> tuple[str, tuple[str, ...]]:
    for cls, attrs in _PATTERN_ATTRS.items():
        if isinstance(matrix, cls):
            return cls.__name__.removeprefix("Batch").lower(), attrs
    raise TypeError(
        f"cannot coalesce matrices of type {type(matrix).__name__}; "
        "supported: BatchCsr, BatchEll, BatchDia, BatchDense"
    )


def pattern_fingerprint(matrix) -> str:
    """Stable digest of a batch matrix's shared sparsity pattern."""
    fmt, attrs = _format_of(matrix)
    parts = [fmt, str(matrix.num_rows), str(matrix.num_cols)]
    parts += [_fingerprint_array(getattr(matrix, a)) for a in attrs]
    return "/".join(parts)


def compat_key(request: SolveRequest) -> CompatKey:
    """The coalescing compatibility key of one request."""
    matrix = request.matrix
    fmt, _ = _format_of(matrix)
    return CompatKey(
        num_rows=int(matrix.num_rows),
        fmt=fmt,
        dtype=str(np.dtype(getattr(matrix, "dtype", np.float64))),
        solver=request.solver,
        tolerance=float(request.tolerance),
        pattern_fp=pattern_fingerprint(matrix),
        degraded=bool(request.degraded),
        scenario=request.scenario,
    )


def concat_requests(requests: list[SolveRequest]):
    """Concatenate compatible requests into one batch matrix + RHS.

    Returns ``(matrix, b, slices)`` where ``slices[i]`` is request ``i``'s
    ``slice`` of the batch axis — results scatter back through it, so
    tickets resolve in *request* order regardless of which systems finish
    their iterations first inside the kernel.
    """
    first = requests[0].matrix
    fmt, _ = _format_of(first)
    values = np.concatenate([r.matrix.values for r in requests], axis=0)
    b = np.concatenate([r.b for r in requests], axis=0)
    if fmt == "csr":
        matrix = BatchCsr(first.num_cols, first.row_ptrs, first.col_idxs,
                          values, check=False)
    elif fmt == "ell":
        matrix = BatchEll(first.num_cols, first.col_idxs, values, check=False)
    elif fmt == "dia":
        matrix = BatchDia(first.num_cols, first.offsets, values, check=False)
    else:
        matrix = BatchDense(values)
    slices = []
    start = 0
    for r in requests:
        slices.append(slice(start, start + r.num_systems))
        start += r.num_systems
    return matrix, b, slices


@dataclass(frozen=True)
class CoalescePolicy:
    """Batching knobs of the coalescer.

    Attributes
    ----------
    max_batch:
        Flush a group once it holds this many *systems* (also the batch
        size at which the solver variant is priced).
    max_wait_s:
        Flush a group once its oldest request has waited this long
        (virtual seconds) — bounds the latency cost of batching.
    naive:
        Dispatch every request alone the moment it arrives (the
        per-request baseline the benchmark gates against).  Equivalent to
        ``max_batch=1, max_wait_s=0`` but spelled out for reports.
    """

    max_batch: int = 64
    max_wait_s: float = 2e-3
    naive: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be non-negative")


@dataclass
class CoalescedBatch:
    """One flushed batch, ready for the dispatcher."""

    batch_id: int
    key: CompatKey
    requests: list[SolveRequest]
    tickets: list[SolveTicket]
    solver_variant: str
    flush_time: float
    flush_reason: str

    @property
    def num_systems(self) -> int:
        return sum(r.num_systems for r in self.requests)


@dataclass
class _Group:
    key: CompatKey
    entries: list[tuple[SolveRequest, SolveTicket]] = field(default_factory=list)
    oldest_arrival: float = 0.0

    @property
    def num_systems(self) -> int:
        return sum(r.num_systems for r, _ in self.entries)

    def min_deadline(self) -> float | None:
        deadlines = [r.deadline for r, _ in self.entries if r.deadline is not None]
        return min(deadlines) if deadlines else None


class Coalescer:
    """Groups admitted requests into hardware batches under a wait policy.

    Parameters
    ----------
    policy:
        The :class:`CoalescePolicy` batching knobs.
    gpu:
        Target GPU for the per-key solver-variant choice.
    deadline_headroom_s:
        Slack the deadline-pressure flush keeps (from the QoS policy).
    service_estimate:
        Callable ``(key, solver_variant, num_systems) -> seconds``
        estimating a batch's service time — used by the deadline-pressure
        trigger.  ``None`` uses zero (deadline pressure fires only at
        headroom distance from the deadline itself).
    """

    def __init__(
        self,
        policy: CoalescePolicy,
        gpu: GpuSpec,
        *,
        deadline_headroom_s: float = 1e-3,
        service_estimate=None,
    ) -> None:
        self.policy = policy
        self.gpu = gpu
        self.deadline_headroom_s = float(deadline_headroom_s)
        self._estimate = service_estimate
        self._groups: dict[CompatKey, _Group] = {}
        self._variants: dict[CompatKey, str] = {}
        self._next_batch_id = 0

    # -- state ---------------------------------------------------------------

    @property
    def pending_systems(self) -> int:
        return sum(g.num_systems for g in self._groups.values())

    @property
    def pending_requests(self) -> int:
        return sum(len(g.entries) for g in self._groups.values())

    def solver_variant(self, key: CompatKey, matrix) -> str:
        """The solver the group's batches run (cached per key).

        :func:`tune_for_matrix` prices the classic-vs-pipelined trade at
        the coalescing target batch size, so every batch flushed from one
        group uses the same variant — a request solved alone and the same
        request solved in a full batch must not silently change solver.
        Degraded groups run the refinement ladder instead.
        """
        if key.degraded:
            return "refinement"
        hit = self._variants.get(key)
        if hit is None:
            decision = tune_for_matrix(
                self.gpu, matrix, solver=key.solver,
                num_batch=self.policy.max_batch,
                scenario=key.scenario,
            )
            hit = decision.solver_variant or key.solver
            self._variants[key] = hit
        return hit

    # -- adding and flushing -------------------------------------------------

    def add(
        self, request: SolveRequest, ticket: SolveTicket, now: float
    ) -> list[CoalescedBatch]:
        """File one admitted request; returns any batches that became due.

        In ``naive`` mode every request flushes immediately as its own
        batch; otherwise a group flushes from :meth:`add` only when it
        reaches ``max_batch`` systems.
        """
        key = compat_key(request)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _Group(key=key, oldest_arrival=now)
        elif not group.entries:
            group.oldest_arrival = now
        group.entries.append((request, ticket))

        if self.policy.naive:
            return [self._flush(group, now, "naive")]
        if group.num_systems >= self.policy.max_batch:
            return [self._flush(group, now, "batch-full")]
        return []

    def due(self, now: float) -> list[CoalescedBatch]:
        """Flush every group whose wait or deadline trigger has fired."""
        out = []
        for group in list(self._groups.values()):
            if not group.entries:
                continue
            reason = self._due_reason(group, now)
            if reason is not None:
                out.append(self._flush(group, now, reason))
        return out

    def flush_all(self, now: float) -> list[CoalescedBatch]:
        """Flush everything (service drain/shutdown)."""
        return [
            self._flush(g, now, "drain")
            for g in list(self._groups.values())
            if g.entries
        ]

    def next_flush_time(self) -> float | None:
        """Earliest virtual time at which some group becomes due."""
        times = []
        for group in self._groups.values():
            if not group.entries:
                continue
            times.append(group.oldest_arrival + self.policy.max_wait_s)
            deadline = group.min_deadline()
            if deadline is not None:
                times.append(self._deadline_trigger(group, deadline))
        return min(times) if times else None

    def _service_estimate(self, group: _Group) -> float:
        if self._estimate is None:
            return 0.0
        variant = self.solver_variant(group.key, group.entries[0][0].matrix)
        return float(self._estimate(group.key, variant, group.num_systems))

    def _deadline_trigger(self, group: _Group, deadline: float) -> float:
        return deadline - self.deadline_headroom_s - self._service_estimate(group)

    def _due_reason(self, group: _Group, now: float) -> str | None:
        if now >= group.oldest_arrival + self.policy.max_wait_s:
            return "max-wait"
        deadline = group.min_deadline()
        if deadline is not None and now >= self._deadline_trigger(group, deadline):
            return "deadline-pressure"
        return None

    def _flush(self, group: _Group, now: float, reason: str) -> CoalescedBatch:
        """Cut up to ``max_batch`` systems from a group into one batch.

        Requests leave in arrival order (the admission queue already
        applied weighted fair ordering across tenants); a remainder stays
        behind with its wait clock reset to the remainder's oldest entry.
        """
        take: list[tuple[SolveRequest, SolveTicket]] = []
        systems = 0
        while group.entries:
            req, _ = group.entries[0]
            if take and systems + req.num_systems > self.policy.max_batch:
                break
            take.append(group.entries.pop(0))
            systems += req.num_systems
        if group.entries:
            group.oldest_arrival = now
        else:
            del self._groups[group.key]

        batch = CoalescedBatch(
            batch_id=self._next_batch_id,
            key=group.key,
            requests=[r for r, _ in take],
            tickets=[t for _, t in take],
            solver_variant=self.solver_variant(group.key, take[0][0].matrix),
            flush_time=now,
            flush_reason=reason,
        )
        self._next_batch_id += 1
        return batch
