"""Seeded traffic generation and the synchronous simulation entry point.

Two arrival processes drive the service benchmarks, both pure functions of
their seed:

* ``"poisson"`` — memoryless arrivals at a constant mean rate, the
  standard open-loop load model;
* ``"bursty"`` — a two-state Markov-modulated Poisson process (MMPP):
  the source alternates between a quiet state and a burst state with
  exponentially distributed dwell times, stressing the coalescer's
  max-wait/max-batch trade far harder than a constant rate does.

The workload itself is a family of diagonally-dominant tridiagonal systems
(shared ELL pattern, per-request values) — small enough that thousands of
requests solve in seconds of host time, while the *modelled* GPU cost per
batch is nearly batch-size independent, which is precisely the regime where
coalescing pays.

:func:`serve_traffic` is the synchronous wrapper: it builds the virtual
clock, the service and the open-loop client, and drives the whole
simulation to completion with :meth:`~repro.service.clock.VirtualClock.drive`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.batch_ell import PAD_COL, BatchEll
from ..core.types import INDEX_DTYPE
from .clock import VirtualClock
from .coalescer import CoalescePolicy
from .qos import QosPolicy
from .queue import SolveRequest, TicketResult
from .service import ServiceReport, SolverService

__all__ = [
    "TrafficPattern",
    "WorkloadSpec",
    "arrival_times",
    "make_request",
    "run_traffic",
    "serve_traffic",
    "tridiag_template",
]


@dataclass(frozen=True)
class TrafficPattern:
    """A seeded arrival process.

    Attributes
    ----------
    kind:
        ``"poisson"`` or ``"bursty"`` (two-state MMPP).
    rate_hz:
        Mean arrival rate (the quiet-state rate for ``"bursty"``).
    duration_s:
        Length of the arrival window in virtual seconds.
    burst_rate_hz:
        Burst-state arrival rate (``"bursty"`` only).
    mean_dwell_s:
        Mean dwell time in each MMPP state (``"bursty"`` only).
    seed:
        Seed of the arrival process (request contents use ``seed + 1``).
    """

    kind: str = "poisson"
    rate_hz: float = 20_000.0
    duration_s: float = 0.05
    burst_rate_hz: float = 80_000.0
    mean_dwell_s: float = 5e-3
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.kind not in ("poisson", "bursty"):
            raise ValueError(f"unknown traffic kind {self.kind!r}")
        if self.rate_hz <= 0 or self.duration_s <= 0:
            raise ValueError("rate_hz and duration_s must be positive")


def arrival_times(pattern: TrafficPattern) -> np.ndarray:
    """Sorted virtual-time arrival instants of one traffic realisation."""
    rng = np.random.default_rng(pattern.seed)
    out = []
    t = 0.0
    if pattern.kind == "poisson":
        while True:
            t += rng.exponential(1.0 / pattern.rate_hz)
            if t >= pattern.duration_s:
                break
            out.append(t)
    else:
        rate = pattern.rate_hz
        state_end = rng.exponential(pattern.mean_dwell_s)
        while t < pattern.duration_s:
            gap = rng.exponential(1.0 / rate)
            if t + gap >= state_end:
                # Jump to the state boundary and toggle quiet <-> burst;
                # the memoryless property makes discarding the gap exact.
                t = state_end
                rate = (
                    pattern.burst_rate_hz
                    if rate == pattern.rate_hz
                    else pattern.rate_hz
                )
                state_end = t + rng.exponential(pattern.mean_dwell_s)
                continue
            t += gap
            if t < pattern.duration_s:
                out.append(t)
    return np.asarray(out, dtype=np.float64)


def tridiag_template(num_rows: int) -> np.ndarray:
    """Shared ELL column indices of the tridiagonal pattern, ``(3, n)``."""
    n = int(num_rows)
    rows = np.arange(n)
    col_idxs = np.stack([rows - 1, rows, rows + 1]).astype(INDEX_DTYPE)
    col_idxs[0, 0] = PAD_COL
    col_idxs[2, n - 1] = PAD_COL
    return col_idxs


@dataclass(frozen=True)
class WorkloadSpec:
    """What each arriving request asks for.

    Attributes
    ----------
    num_rows:
        System size of the tridiagonal workload.
    systems_choices:
        Candidate per-request batch sizes, sampled uniformly.
    tolerance, solver:
        Solve configuration (part of the coalescing key).
    tenants:
        ``(name, share)`` pairs; each arrival picks a tenant with
        probability proportional to its share.
    """

    num_rows: int = 128
    systems_choices: tuple[int, ...] = (1,)
    tolerance: float = 1e-8
    solver: str = "bicgstab"
    tenants: tuple[tuple[str, float], ...] = (("default", 1.0),)


#: Template cache so every generated request shares the same index array
#: (keeps the pattern-fingerprint cache hot; correctness only needs equal
#: *contents*).
_TEMPLATES: dict[int, np.ndarray] = {}


def make_request(
    rng: np.random.Generator, spec: WorkloadSpec, tenant: str
) -> SolveRequest:
    """One random diagonally-dominant tridiagonal request."""
    n = spec.num_rows
    col_idxs = _TEMPLATES.get(n)
    if col_idxs is None:
        col_idxs = _TEMPLATES[n] = tridiag_template(n)
    num_systems = int(rng.choice(spec.systems_choices))
    values = np.zeros((num_systems, 3, n))
    off = rng.uniform(-1.0, 1.0, size=(num_systems, 2, n))
    values[:, 0, 1:] = off[:, 0, 1:]
    values[:, 2, :-1] = off[:, 1, :-1]
    values[:, 1, :] = 4.0 + rng.uniform(0.0, 1.0, size=(num_systems, n))
    matrix = BatchEll(n, col_idxs, values, check=False)
    b = rng.standard_normal((num_systems, n))
    return SolveRequest(
        matrix=matrix,
        b=b,
        tenant=tenant,
        tolerance=spec.tolerance,
        solver=spec.solver,
    )


async def run_traffic(
    service: SolverService,
    pattern: TrafficPattern,
    spec: WorkloadSpec | None = None,
) -> list[TicketResult | None]:
    """Open-loop client: submit one request per arrival, await all results.

    Returns results in submission order (``None`` for shed requests).
    """
    spec = spec if spec is not None else WorkloadSpec()
    rng = np.random.default_rng(pattern.seed + 1)
    names = [name for name, _ in spec.tenants]
    shares = np.asarray([share for _, share in spec.tenants], dtype=np.float64)
    shares = shares / shares.sum()
    tickets = []
    for t in arrival_times(pattern):
        await service.clock.sleep_until(t)
        tenant = names[int(rng.choice(len(names), p=shares))]
        tickets.append(service.submit(make_request(rng, spec, tenant)))
    return [await ticket.result_or_none() for ticket in tickets]


@dataclass
class TrafficRun:
    """Outcome of one complete simulated service run."""

    report: ServiceReport
    results: list = field(default_factory=list)


def serve_traffic(
    pattern: TrafficPattern,
    spec: WorkloadSpec | None = None,
    *,
    qos: QosPolicy | None = None,
    coalesce: CoalescePolicy | None = None,
    num_ranks: int = 1,
    max_iter: int = 500,
) -> TrafficRun:
    """Run one traffic realisation against a fresh service, synchronously.

    Builds clock + service + client inside a private event loop and drives
    virtual time until every ticket is resolved.  Deterministic: the same
    arguments produce the same report and the same results, bit for bit.
    """
    import asyncio

    async def _main() -> TrafficRun:
        clock = VirtualClock()
        service = SolverService(
            clock=clock,
            qos=qos,
            coalesce=coalesce,
            num_ranks=num_ranks,
            max_iter=max_iter,
        )
        try:
            results = await clock.drive(run_traffic(service, pattern, spec))
        finally:
            service.close()
        return TrafficRun(report=service.report, results=results)

    return asyncio.run(_main())
