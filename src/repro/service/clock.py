"""Deterministic virtual time for the asyncio solver service.

The service's latency and throughput numbers come from the *modelled* GPU
wall-clock, not the host's — a batch that the cost model bills at 1.1 ms
occupies the simulated device for exactly 1.1 ms of virtual time.  To keep
every schedule decision reproducible (an acceptance criterion: identical
traffic seeds must produce identical dispatch traces), no coroutine in the
service ever touches the host clock.  All waiting goes through
:class:`VirtualClock`:

* :meth:`VirtualClock.sleep` / :meth:`sleep_until` park a coroutine on a
  timer heap ordered by ``(time, sequence)`` — ties resolve in creation
  order, never by wall-clock races;
* :meth:`VirtualClock.drive` is the single place time advances: it lets
  every runnable coroutine run until the event loop is quiescent, then pops
  the earliest timer and jumps ``now`` forward to it.

Within one event-loop pass CPython's asyncio is already deterministic (a
FIFO ready queue); the virtual clock removes the only remaining sources of
nondeterminism — real timers and wall-clock reads — so the whole service
simulation is a pure function of its inputs and seeds.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools

__all__ = ["VirtualClock"]

#: Drain passes used when the running loop does not expose its ready queue
#: (non-CPython event loops); each pass lets one scheduling round run.
_DRAIN_FALLBACK_PASSES = 64


class VirtualClock:
    """A discrete-event virtual clock driving an asyncio simulation.

    Parameters
    ----------
    start:
        Initial virtual time in seconds.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._timers: list[tuple[float, int, asyncio.Future]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending_timers(self) -> int:
        """Number of timers not yet fired (including cancelled ones)."""
        return len(self._timers)

    # -- waiting -------------------------------------------------------------

    def sleep_until(self, when: float) -> asyncio.Future:
        """A future that resolves when virtual time reaches ``when``.

        Times in the past resolve at the *current* time on the next drive
        step (the clock never runs backwards).  The future can be
        cancelled; cancelled timers are skipped when popped.
        """
        fut = asyncio.get_running_loop().create_future()
        heapq.heappush(
            self._timers, (max(float(when), self._now), next(self._seq), fut)
        )
        return fut

    def sleep(self, delay: float) -> asyncio.Future:
        """A future that resolves ``delay`` virtual seconds from now."""
        return self.sleep_until(self._now + max(float(delay), 0.0))

    # -- driving -------------------------------------------------------------

    async def _drain(self) -> None:
        """Yield until every runnable coroutine has run to its next await.

        CPython's event loop exposes its ready queue as ``loop._ready``;
        when present the drain is exact (loop until no callback other than
        this coroutine's own wake-up is pending).  Otherwise a fixed number
        of scheduling passes is used — still deterministic, since the pass
        count depends only on program state.
        """
        loop = asyncio.get_running_loop()
        ready = getattr(loop, "_ready", None)
        if ready is None:
            for _ in range(_DRAIN_FALLBACK_PASSES):
                await asyncio.sleep(0)
            return
        while True:
            await asyncio.sleep(0)
            if not ready:
                return

    async def drive(self, stop: "asyncio.Future | asyncio.Task"):
        """Advance virtual time until ``stop`` completes; return its result.

        The driver alternates two phases: drain (every runnable coroutine
        runs until blocked) and fire (the earliest pending timer resolves
        and ``now`` jumps to it).  Firing one timer at a time keeps
        simultaneous timers ordered by creation sequence.

        Raises ``RuntimeError`` when the simulation deadlocks: ``stop`` is
        still pending but no timer remains to wake anything up.
        """
        stop = asyncio.ensure_future(stop)
        while True:
            await self._drain()
            if stop.done():
                return stop.result()
            while self._timers and self._timers[0][2].cancelled():
                heapq.heappop(self._timers)
            if not self._timers:
                stop.cancel()
                await self._drain()
                raise RuntimeError(
                    "virtual clock deadlock: the stop condition is pending "
                    "but no timers remain — some coroutine is waiting on an "
                    "event that nothing will ever set"
                )
            when, _, fut = heapq.heappop(self._timers)
            self._now = max(self._now, when)
            fut.set_result(None)

    async def wait_event_or_until(
        self, event: asyncio.Event, when: float | None
    ) -> None:
        """Block until ``event`` is set or virtual time reaches ``when``.

        ``when=None`` waits on the event alone.  Either wake-up leaves the
        event's state untouched — callers clear it themselves once they
        have consumed the work that set it.
        """
        if when is None:
            await event.wait()
            return
        if event.is_set():
            return
        timer = self.sleep_until(when)
        waiter = asyncio.ensure_future(event.wait())
        try:
            await asyncio.wait(
                (waiter, timer), return_when=asyncio.FIRST_COMPLETED
            )
        finally:
            timer.cancel()
            waiter.cancel()
