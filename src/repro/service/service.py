"""The solver service: admission -> fair scheduling -> coalescing -> dispatch.

:class:`SolverService` wires the service layers into two long-running
coroutines on one asyncio loop, all timed by the shared
:class:`~repro.service.clock.VirtualClock`:

* the **scheduler loop** wakes on new admissions or the coalescer's next
  flush deadline, drains the admission queue in weighted-fair order into
  the coalescer, and forwards due batches to the dispatch backlog;
* the **dispatch loop** executes backlogged batches one at a time through
  the :class:`~repro.service.dispatcher.Dispatcher` — the virtual node is
  a serial resource, exactly like a busy GPU stream.

``submit()`` is the tenant-facing entry point: it applies the QoS
admission verdict (admit / degrade / shed) against the service's total
backlog, stamps the request, and returns an awaitable
:class:`~repro.service.queue.SolveTicket`.  Everything downstream of
admission preserves *request order within a batch*: results scatter back
through per-request slices of the batch axis, so tickets resolve with
their own systems no matter which systems converged first inside the
kernel.
"""

from __future__ import annotations

import asyncio
from collections import Counter, deque
from dataclasses import dataclass, field

import numpy as np

from ..core.faults import health_counts
from ..dist.multi_gpu import GpuNode, SUMMIT_NODE
from .clock import VirtualClock
from .coalescer import CoalescePolicy, Coalescer, compat_key
from .dispatcher import DispatchReport, Dispatcher
from .qos import DEGRADE, SHED, FairScheduler, QosPolicy
from .queue import AdmissionQueue, SolveRequest, SolveTicket, TicketResult

__all__ = ["ServiceReport", "SolverService"]


def _health_histogram(converged: np.ndarray, health) -> dict[str, int]:
    """Health histogram of a request's systems.

    Solvers without fault tracking report ``health=None``; those systems
    map onto converged/iterating, mirroring how
    :func:`repro.core.faults.classify_health` grounds the taxonomy.
    """
    if health is not None:
        return health_counts(health)
    n_conv = int(np.count_nonzero(converged))
    out = {}
    if n_conv:
        out["converged"] = n_conv
    if len(converged) - n_conv:
        out["iterating"] = len(converged) - n_conv
    return out


@dataclass
class ServiceReport:
    """Aggregate metrics of one service run (all times virtual seconds)."""

    submitted: int = 0
    admitted: int = 0
    degraded: int = 0
    shed: int = 0
    completed: int = 0
    completed_systems: int = 0
    deadline_misses: int = 0
    batches: int = 0
    compaction_events: int = 0
    device_busy_s: float = 0.0
    first_submit: float = float("inf")
    last_finish: float = 0.0
    latencies: list = field(default_factory=list)
    queue_delays: list = field(default_factory=list)
    batch_sizes: list = field(default_factory=list)
    flush_reasons: Counter = field(default_factory=Counter)
    tenant_completed: Counter = field(default_factory=Counter)
    tenant_shed: Counter = field(default_factory=Counter)
    tenant_health: dict = field(default_factory=dict)

    @property
    def makespan_s(self) -> float:
        """First submission to last completion."""
        if self.completed == 0:
            return 0.0
        return self.last_finish - self.first_submit

    @property
    def throughput(self) -> float:
        """Completed systems per virtual second of makespan."""
        span = self.makespan_s
        return self.completed_systems / span if span > 0 else 0.0

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completed requests that missed their deadline."""
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def mean_batch_size(self) -> float:
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "degraded": self.degraded,
            "shed": self.shed,
            "completed": self.completed,
            "completed_systems": self.completed_systems,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "compaction_events": self.compaction_events,
            "device_busy_s": self.device_busy_s,
            "makespan_s": self.makespan_s,
            "throughput_systems_per_s": self.throughput,
            "flush_reasons": dict(self.flush_reasons),
            "tenant_completed": dict(self.tenant_completed),
            "tenant_shed": dict(self.tenant_shed),
            "tenant_health": {t: dict(c) for t, c in self.tenant_health.items()},
        }


class SolverService:
    """Async solver-as-a-service front end over the batched solvers.

    Parameters
    ----------
    clock:
        Virtual clock shared with the traffic source (one is created when
        omitted).
    qos:
        Admission/fairness/deadline policy.
    coalesce:
        Batching policy (``CoalescePolicy(naive=True)`` gives the
        per-request baseline).
    node, num_ranks:
        Simulated execution target passed to the dispatcher.
    max_iter:
        Solver iteration cap.
    """

    def __init__(
        self,
        *,
        clock: VirtualClock | None = None,
        qos: QosPolicy | None = None,
        coalesce: CoalescePolicy | None = None,
        node: GpuNode = SUMMIT_NODE,
        num_ranks: int = 1,
        max_iter: int = 500,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.qos = qos if qos is not None else QosPolicy()
        policy = coalesce if coalesce is not None else CoalescePolicy()
        self.scheduler = FairScheduler(self.qos.weights())
        self.queue = AdmissionQueue(capacity=self.qos.capacity)
        self.dispatcher = Dispatcher(
            self.clock,
            node=node,
            num_ranks=num_ranks,
            max_iter=max_iter,
            degraded_precision=self.qos.degraded_precision,
        )
        self.coalescer = Coalescer(
            policy,
            node.gpu,
            deadline_headroom_s=self.qos.deadline_headroom_s,
            service_estimate=self.dispatcher.estimate_service_time,
        )
        self.report = ServiceReport()
        self._backlog: deque = deque()
        self._dispatch_wake: asyncio.Event | None = None
        self._inflight = 0  # requests flushed but not yet completed
        self._next_request_id = 0
        self._tasks: list[asyncio.Task] = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def _ensure_running(self) -> None:
        if self._tasks or self._closed:
            return
        self._dispatch_wake = asyncio.Event()
        self._tasks = [
            asyncio.ensure_future(self._scheduler_loop()),
            asyncio.ensure_future(self._dispatch_loop()),
        ]

    def close(self) -> None:
        """Cancel the service loops (pending tickets are rejected)."""
        self._closed = True
        for task in self._tasks:
            task.cancel()
        self._tasks = []

    # -- submission ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet completed (the backpressure signal)."""
        return len(self.queue) + self.coalescer.pending_requests + self._inflight

    def submit(self, request: SolveRequest) -> SolveTicket:
        """Admit (or degrade, or shed) one request; returns its ticket."""
        if self._closed:
            raise RuntimeError("service is closed")
        self._ensure_running()
        now = self.clock.now
        request.request_id = self._next_request_id
        self._next_request_id += 1
        request.submit_time = now
        request.deadline = self.qos.deadline_for(
            request.tenant, now, request.deadline
        )
        self.report.submitted += 1
        self.report.first_submit = min(self.report.first_submit, now)

        ticket = SolveTicket(request)
        verdict = self.qos.admission(
            self.pending, allow_degrade=request.allow_degrade
        )
        if verdict == SHED:
            self.report.shed += 1
            self.report.tenant_shed[request.tenant] += 1
            ticket.reject(
                f"request {request.request_id} shed: service backlog "
                f"{self.pending} at capacity {self.qos.capacity}"
            )
            return ticket
        if verdict == DEGRADE:
            request.degraded = True
            self.report.degraded += 1
        self.report.admitted += 1
        self.queue.put(request, ticket)
        return ticket

    def direct_solve(self, request: SolveRequest):
        """The reference solve the service path must match bit-for-bit.

        Runs the request alone, immediately, with exactly the solver
        configuration its coalescing group would use (same variant choice,
        criterion, preconditioner and compaction threshold).
        """
        key = compat_key(request)
        variant = self.coalescer.solver_variant(key, request.matrix)
        solver = self.dispatcher.solver_for(key, variant)
        return solver.solve(request.matrix, request.b)

    # -- service loops -------------------------------------------------------

    async def _scheduler_loop(self) -> None:
        while True:
            await self.clock.wait_event_or_until(
                self.queue.wake, self.coalescer.next_flush_time()
            )
            self.queue.wake.clear()
            now = self.clock.now
            batches = []
            for request, ticket in self.queue.drain(self.scheduler):
                batches.extend(self.coalescer.add(request, ticket, now))
            batches.extend(self.coalescer.due(now))
            for batch in batches:
                self._inflight += len(batch.requests)
                self._backlog.append(batch)
            if batches:
                self._dispatch_wake.set()

    async def _dispatch_loop(self) -> None:
        while True:
            await self._dispatch_wake.wait()
            self._dispatch_wake.clear()
            while self._backlog:
                batch = self._backlog.popleft()
                report = await self.dispatcher.execute(batch)
                self._complete(batch, report)

    # -- completion ----------------------------------------------------------

    def _complete(self, batch, report: DispatchReport) -> None:
        result = report.result
        finish = report.finish_time
        self.report.batches += 1
        self.report.batch_sizes.append(
            sum(r.num_systems for r in batch.requests)
        )
        self.report.flush_reasons[batch.flush_reason] += 1
        self.report.compaction_events += report.compaction_events
        self.report.device_busy_s += report.modelled_time_s
        self.report.last_finish = max(self.report.last_finish, finish)

        for request, ticket, sl in zip(
            batch.requests, batch.tickets, report.slices
        ):
            converged = result.converged[sl]
            health = result.health[sl] if result.health is not None else None
            counts = _health_histogram(converged, health)
            tenant_tally = self.report.tenant_health.setdefault(
                request.tenant, Counter()
            )
            tenant_tally.update(counts)
            missed = (
                request.deadline is not None and finish > request.deadline
            )
            if missed:
                self.report.deadline_misses += 1
            self._inflight -= 1
            self.report.completed += 1
            self.report.completed_systems += request.num_systems
            self.report.tenant_completed[request.tenant] += 1
            outcome = TicketResult(
                x=result.x[sl],
                iterations=result.iterations[sl],
                residual_norms=result.residual_norms[sl],
                converged=converged,
                health=health,
                health_counts=counts,
                tenant_health_counts=dict(tenant_tally),
                submit_time=request.submit_time,
                dispatch_time=report.dispatch_time,
                finish_time=finish,
                deadline=request.deadline,
                deadline_missed=missed,
                degraded=request.degraded,
                batch_id=report.batch_id,
                batch_size=int(result.x.shape[0]),
                num_ranks=report.num_ranks,
            )
            self.report.latencies.append(outcome.latency)
            self.report.queue_delays.append(outcome.queue_delay)
            ticket.fulfill(outcome)
