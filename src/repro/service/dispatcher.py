"""Batch dispatcher: real numerics, modelled wall-clock, multi-GPU shards.

The dispatcher is where a coalesced batch meets hardware.  Each
:class:`~repro.service.coalescer.CoalescedBatch` runs the *actual* host
solver once (so the numerics — including active-batch compaction of
early-converged stragglers — are the real thing), then bills virtual
wall-clock from the models the repo already trusts:

* the sync-aware GPU cost model
  (:func:`repro.gpu.timing.estimate_iterative_solve`) prices each shard's
  kernel from the solve's *measured* per-system iteration counts;
* the PCIe transfer model (``repro.xgc.timeline.PCIE_BW``) prices moving
  each shard's matrix values + right-hand sides to the device and the
  solutions back;
* :mod:`repro.dist.partition` shards the batch across the node's GPUs
  (block scheme), and the node's ``sync_overhead_us`` is charged once when
  more than one rank participates — the same accounting as
  :func:`repro.dist.multi_gpu.estimate_node_solve`.

The batch occupies the simulated node for the resulting makespan: the
dispatcher holds the device by ``await``-ing the virtual clock, so a
single dispatch loop serialises batches exactly like a busy GPU queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solvers import make_solver
from ..core.stop import AbsoluteResidual
from ..core.types import SolveResult
from ..dist.multi_gpu import GpuNode, SUMMIT_NODE
from ..dist.partition import partition_batch
from ..gpu.timing import estimate_iterative_solve
from ..xgc.timeline import PCIE_BW
from .clock import VirtualClock
from .coalescer import CoalescedBatch, CompatKey, concat_requests

__all__ = ["DispatchReport", "Dispatcher"]


@dataclass
class DispatchReport:
    """One executed batch: real results plus the modelled execution.

    Attributes
    ----------
    batch_id, key, solver_variant, flush_reason:
        Echoed from the coalesced batch.
    result:
        The real :class:`~repro.core.types.SolveResult` of the whole
        batch; request slices index its arrays.
    slices:
        Per-request slices of the batch axis, in request order.
    dispatch_time / finish_time:
        Virtual time the batch started / finished on the node.
    modelled_time_s:
        Node makespan: slowest shard (transfers + kernel) plus the
        multi-GPU sync charge.
    transfer_s:
        Slowest shard's PCIe component alone.
    num_ranks:
        GPUs that received at least one system.
    compaction_events:
        Active-batch compactions the solver performed (straggler
        re-batching through :class:`repro.core.compaction.BatchCompactor`).
    """

    batch_id: int
    key: CompatKey
    solver_variant: str
    flush_reason: str
    result: SolveResult
    slices: list[slice]
    dispatch_time: float
    finish_time: float
    modelled_time_s: float
    transfer_s: float
    num_ranks: int
    compaction_events: int


def _billing_format(key: CompatKey, matrix) -> tuple[str, int, int]:
    """(fmt, nnz, stored_nnz) as the GPU cost model wants them.

    Dense batches are billed as fully-stored ELL — every entry stored and
    touched — since the timing model prices sparse formats only.
    """
    n = int(matrix.num_rows)
    nnz = int(matrix.nnz_per_system)
    if key.fmt == "dense":
        return "ell", nnz, n * int(matrix.num_cols)
    stored = int(getattr(matrix, "stored_per_system", nnz) or nnz)
    return key.fmt, nnz, stored


class Dispatcher:
    """Runs coalesced batches and bills their modelled node makespan.

    Parameters
    ----------
    clock:
        The service's virtual clock (occupancy is expressed by sleeping
        on it).
    node:
        Simulated multi-GPU node (default: a Summit node, 6x V100).
    num_ranks:
        GPUs the dispatcher shards across (capped at the node's count).
    max_iter:
        Iteration cap handed to every solver the dispatcher builds.
    degraded_precision:
        Inner-solver precision of the refinement ladder that serves
        degraded requests.
    partition_scheme:
        ``"block"`` (default) or ``"cyclic"`` sharding.
    """

    def __init__(
        self,
        clock: VirtualClock,
        *,
        node: GpuNode = SUMMIT_NODE,
        num_ranks: int = 1,
        max_iter: int = 500,
        degraded_precision: str = "mixed",
        partition_scheme: str = "block",
    ) -> None:
        if num_ranks < 1:
            raise ValueError("num_ranks must be at least 1")
        self.clock = clock
        self.node = node
        self.num_ranks = min(int(num_ranks), int(node.gpus_per_node))
        self.max_iter = int(max_iter)
        self.degraded_precision = degraded_precision
        self.partition_scheme = partition_scheme
        self._solvers: dict[tuple, object] = {}
        #: Running totals for the service report.
        self.batches_run = 0
        self.systems_run = 0
        self.busy_s = 0.0
        self.compaction_events = 0

    # -- solver construction -------------------------------------------------

    def solver_for(self, key: CompatKey, variant: str):
        """The (cached) solver a batch with this key runs.

        Exactly the configuration a direct ``solve()`` would use — same
        preconditioner, criterion and compaction threshold — which is what
        makes service-path results bit-identical per system.
        """
        cache_key = (variant, key.tolerance, key.degraded)
        solver = self._solvers.get(cache_key)
        if solver is None:
            if key.degraded:
                solver = make_solver(
                    "refinement",
                    precision=self.degraded_precision,
                    preconditioner="jacobi",
                    criterion=AbsoluteResidual(key.tolerance),
                )
            else:
                solver = make_solver(
                    variant,
                    preconditioner="jacobi",
                    criterion=AbsoluteResidual(key.tolerance),
                    max_iter=self.max_iter,
                )
            self._solvers[cache_key] = solver
        return solver

    # -- billing -------------------------------------------------------------

    def _shard_times(
        self, key: CompatKey, matrix, result: SolveResult, variant: str
    ) -> tuple[float, float]:
        """(makespan_s, slowest_transfer_s) of the sharded batch."""
        fmt, nnz, stored = _billing_format(key, matrix)
        n = int(matrix.num_rows)
        num_batch = int(matrix.num_batch)
        value_bytes = 4 if key.degraded else int(np.dtype(key.dtype).itemsize)
        # Degraded batches run the refinement ladder; the kernel being
        # billed is its fp32/mixed inner solver.
        billed_solver = "bicgstab" if key.degraded else variant
        part = partition_batch(
            num_batch, min(self.num_ranks, num_batch),
            scheme=self.partition_scheme,
        )
        per_system_values = matrix.values.nbytes / num_batch
        per_system_vec = n * 8  # rhs in, solution out: always fp64 host data
        worst = 0.0
        worst_transfer = 0.0
        for rank in range(part.num_ranks):
            idx = part.indices_of(rank)
            if len(idx) == 0:
                continue
            est = estimate_iterative_solve(
                self.node.gpu, fmt, n, nnz, result.iterations[idx],
                stored_nnz=stored, solver=billed_solver,
                value_bytes=value_bytes,
            )
            h2d = len(idx) * (per_system_values + per_system_vec) / PCIE_BW
            d2h = len(idx) * per_system_vec / PCIE_BW
            shard = h2d + est.total_time_s + d2h
            if shard > worst:
                worst = shard
            if h2d + d2h > worst_transfer:
                worst_transfer = h2d + d2h
        if part.num_ranks > 1:
            worst += self.node.sync_overhead_us * 1e-6
        return worst, worst_transfer

    # -- execution -----------------------------------------------------------

    async def execute(self, batch: CoalescedBatch) -> DispatchReport:
        """Solve one coalesced batch and occupy the node for its makespan.

        The caller's single dispatch loop awaits this coroutine batch by
        batch, so the virtual node never overlaps two batches.
        """
        dispatch_time = self.clock.now
        matrix, b, slices = concat_requests(batch.requests)
        solver = self.solver_for(batch.key, batch.solver_variant)
        result = solver.solve(matrix, b)
        compactions = int(getattr(solver, "last_compaction_events", 0))

        ranks_used = min(self.num_ranks, matrix.num_batch)
        makespan, transfer = self._shard_times(
            batch.key, matrix, result, batch.solver_variant
        )
        await self.clock.sleep(makespan)

        self.batches_run += 1
        self.systems_run += matrix.num_batch
        self.busy_s += makespan
        self.compaction_events += compactions
        return DispatchReport(
            batch_id=batch.batch_id,
            key=batch.key,
            solver_variant=batch.solver_variant,
            flush_reason=batch.flush_reason,
            result=result,
            slices=slices,
            dispatch_time=dispatch_time,
            finish_time=self.clock.now,
            modelled_time_s=makespan,
            transfer_s=transfer,
            num_ranks=ranks_used,
            compaction_events=compactions,
        )

    def estimate_service_time(
        self, key: CompatKey, variant: str, num_systems: int,
        iterations: int = 32,
    ) -> float:
        """Cheap a-priori makespan estimate for deadline-pressure flushes."""
        fmt = "ell" if key.fmt == "dense" else key.fmt
        n = key.num_rows
        billed = "bicgstab" if key.degraded else variant
        ranks = max(1, min(self.num_ranks, num_systems))
        shard = -(-num_systems // ranks)
        est = estimate_iterative_solve(
            self.node.gpu, fmt, n, max(1, n), np.full(shard, iterations),
            solver=billed,
            value_bytes=4 if key.degraded else int(np.dtype(key.dtype).itemsize),
        )
        return est.total_time_s
