"""Admission queue of the solver service: requests, tickets, backpressure.

Tenants submit :class:`SolveRequest`\\ s — a batch-matrix handle, right-hand
sides, a tolerance, an optional deadline and a tenant id — and receive a
:class:`SolveTicket` they can ``await``.  The :class:`AdmissionQueue` is the
bounded buffer between the tenants and the scheduler: per-tenant FIFO lanes
preserve each tenant's submission order, while the QoS layer's weighted
fair scheduler decides which lane drains next.  The queue never drops
requests itself — shedding and degradation are *admission* decisions taken
by :class:`repro.service.qos.QosPolicy` before a request enters.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "AdmissionQueue",
    "RequestShed",
    "SolveRequest",
    "SolveTicket",
    "TicketResult",
]


class RequestShed(RuntimeError):
    """Raised when awaiting a ticket the QoS layer refused to admit."""


@dataclass
class SolveRequest:
    """One tenant's solve request.

    Attributes
    ----------
    matrix:
        Any batch-matrix format (CSR / ELL / DIA / dense) holding the
        request's ``num_systems`` systems.
    b:
        Right-hand sides, shape ``(num_systems, num_rows)``.
    tenant:
        Tenant id for fairness, deadlines and health aggregation.
    tolerance:
        Absolute residual tolerance of the solve (part of the coalescing
        compatibility key — systems in one hardware batch share one
        stopping criterion, exactly as a direct ``solve()`` would).
    solver:
        Requested solver family; the coalescer may substitute the
        pipelined sibling when :func:`repro.gpu.tuning.tune_for_matrix`
        prices it cheaper at the coalescing batch size.
    deadline:
        Absolute virtual-time deadline in seconds, or ``None`` for the
        tenant's default (QoS policy).
    allow_degrade:
        Whether the QoS layer may serve this request on the degraded
        fp32/refinement precision ladder under overload.
    scenario:
        Workload identity (``"xgc"`` or an operator-zoo scenario name);
        part of the coalescing key and forwarded to the tuner so batches
        from different operators keep their own tuning decisions.
    request_id, submit_time, degraded:
        Filled in by the service at admission.
    """

    matrix: object
    b: np.ndarray
    tenant: str = "default"
    tolerance: float = 1e-10
    solver: str = "bicgstab"
    deadline: float | None = None
    allow_degrade: bool = True
    scenario: str = "xgc"
    request_id: int = -1
    submit_time: float = math.nan
    degraded: bool = False

    @property
    def num_systems(self) -> int:
        """Systems in this request's batch."""
        return int(self.b.shape[0])

    @property
    def num_rows(self) -> int:
        """Rows per system."""
        return int(self.b.shape[1])


@dataclass
class TicketResult:
    """What a fulfilled :class:`SolveTicket` resolves to.

    Solution arrays are the request's slice of the coalesced batch solve —
    bit-identical to a direct ``solve()`` of the same systems for
    non-degraded requests.  Timing fields are virtual seconds.
    """

    x: np.ndarray
    iterations: np.ndarray
    residual_norms: np.ndarray
    converged: np.ndarray
    health: np.ndarray | None
    health_counts: dict
    #: Aggregated health histogram of *all* systems this request's tenant
    #: has completed so far (this request included) — the service-level
    #: analogue of :meth:`repro.dist.DistributedRun.health_counts`.
    tenant_health_counts: dict
    submit_time: float
    dispatch_time: float
    finish_time: float
    deadline: float | None
    deadline_missed: bool
    degraded: bool
    batch_id: int
    batch_size: int
    num_ranks: int

    @property
    def latency(self) -> float:
        """Virtual seconds from submission to result delivery."""
        return self.finish_time - self.submit_time

    @property
    def queue_delay(self) -> float:
        """Virtual seconds the request waited before its batch dispatched."""
        return self.dispatch_time - self.submit_time


class SolveTicket:
    """Awaitable handle for a submitted request."""

    def __init__(self, request: SolveRequest) -> None:
        self.request = request
        self._future: asyncio.Future = asyncio.get_running_loop().create_future()

    @property
    def done(self) -> bool:
        return self._future.done()

    @property
    def shed(self) -> bool:
        """Whether the QoS layer refused this request."""
        return (
            self._future.done()
            and self._future.exception() is not None
            and isinstance(self._future.exception(), RequestShed)
        )

    def fulfill(self, result: TicketResult) -> None:
        if not self._future.done():
            self._future.set_result(result)

    def reject(self, reason: str) -> None:
        if not self._future.done():
            self._future.set_exception(RequestShed(reason))

    async def result(self) -> TicketResult:
        """Await the solve outcome; raises :class:`RequestShed` if refused."""
        return await self._future

    async def result_or_none(self) -> TicketResult | None:
        """Await the outcome, mapping a shed request to ``None``."""
        try:
            return await self._future
        except RequestShed:
            return None


@dataclass
class AdmissionQueue:
    """Bounded multi-tenant FIFO feeding the scheduler.

    Attributes
    ----------
    capacity:
        Maximum queued *requests* across all tenants (the QoS layer sheds
        above it; the queue itself raises if overfilled, as a safety net).
    """

    capacity: int = 256
    _lanes: dict[str, deque] = field(default_factory=dict)
    _size: int = 0
    #: Set whenever a request arrives; the scheduler clears it after
    #: draining the queue.
    wake: asyncio.Event = field(default_factory=asyncio.Event)

    def __len__(self) -> int:
        return self._size

    @property
    def tenants_waiting(self) -> tuple[str, ...]:
        """Tenants with at least one queued request (insertion order)."""
        return tuple(t for t, lane in self._lanes.items() if lane)

    def put(self, request: SolveRequest, ticket: SolveTicket) -> None:
        """Enqueue an admitted request (QoS checks happen before this)."""
        if self._size >= self.capacity:
            raise OverflowError(
                f"admission queue over capacity ({self.capacity}); the QoS "
                "layer should have shed this request"
            )
        self._lanes.setdefault(request.tenant, deque()).append((request, ticket))
        self._size += 1
        self.wake.set()

    def pop_tenant(self, tenant: str) -> tuple[SolveRequest, SolveTicket]:
        """Dequeue the oldest request of one tenant's lane."""
        item = self._lanes[tenant].popleft()
        self._size -= 1
        return item

    def drain(self, scheduler) -> list[tuple[SolveRequest, SolveTicket]]:
        """Dequeue everything, ordered by the weighted fair ``scheduler``.

        The scheduler's :meth:`~repro.service.qos.FairScheduler.pick` is
        consulted once per request, so an overloaded tenant cannot starve a
        light one even inside a single drain.
        """
        out = []
        while self._size:
            tenant = scheduler.pick(self.tenants_waiting)
            item = self.pop_tenant(tenant)
            scheduler.charge(tenant, item[0].num_systems)
            out.append(item)
        return out
