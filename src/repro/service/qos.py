"""Quality-of-service layer: fairness, deadlines, backpressure.

Three concerns, one module:

* **Weighted fair admission** — :class:`FairScheduler` implements stride
  scheduling over tenant lanes: each tenant carries a virtual *pass* that
  advances by ``work / weight`` whenever one of its requests is taken, and
  the lane with the smallest pass drains next (ties resolve by tenant
  name, so the order is deterministic).  A tenant with weight 3 receives
  3x the service of a weight-1 tenant under contention, and an idle
  tenant's pass is clamped forward on reactivation so it cannot hoard
  credit.

* **Deadlines** — every request gets an absolute virtual-time deadline
  (its own, or tenant default submit-time + ``deadline_s``).  The
  coalescer flushes a group early when the tightest deadline's remaining
  slack drops below the estimated service time plus
  ``deadline_headroom_s``; the dispatcher records misses on the ticket.

* **Backpressure** — admission consults :meth:`QosPolicy.admission` with
  the service's total pending-request count: below
  ``degrade_watermark * capacity`` requests are admitted as-is; between
  the watermark and ``capacity`` they are *degraded* onto the
  fp32/refinement precision ladder (cheaper modelled traffic, same
  tolerance via iterative refinement) when the request allows it; at
  ``capacity`` they are shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ADMIT", "DEGRADE", "SHED", "FairScheduler", "QosPolicy", "TenantSpec"]

#: Admission verdicts.
ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True)
class TenantSpec:
    """Per-tenant QoS parameters.

    Attributes
    ----------
    name:
        Tenant id matched against :attr:`SolveRequest.tenant`.
    weight:
        Fair-share weight (relative service rate under contention).
    deadline_s:
        Default relative deadline applied to requests that carry none;
        ``None`` leaves such requests deadline-free.
    """

    name: str
    weight: float = 1.0
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.weight <= 0.0:
            raise ValueError(f"tenant weight must be positive, got {self.weight}")
        if self.deadline_s is not None and self.deadline_s <= 0.0:
            raise ValueError("deadline_s must be positive or None")


@dataclass
class QosPolicy:
    """Service-wide QoS configuration.

    Attributes
    ----------
    capacity:
        Pending-request bound (admission queue + coalescer + dispatch
        backlog).  Submissions at or above it are shed.
    degrade_watermark:
        Fraction of ``capacity`` above which admissions degrade to the
        low-precision ladder (when the request allows it).  ``1.0``
        disables degradation.
    degraded_precision:
        Precision policy of the degraded ladder's inner solver
        (``"fp32"`` or ``"mixed"``); the outer refinement loop still
        verifies against the request's fp64 tolerance.
    deadline_headroom_s:
        Safety margin the coalescer keeps between a group's estimated
        completion and its tightest deadline before it force-flushes.
    tenants:
        Known tenant specs; unknown tenants get weight 1 and no default
        deadline.
    """

    capacity: int = 256
    degrade_watermark: float = 0.75
    degraded_precision: str = "mixed"
    deadline_headroom_s: float = 1e-3
    tenants: tuple[TenantSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if not 0.0 < self.degrade_watermark <= 1.0:
            raise ValueError("degrade_watermark must lie in (0, 1]")
        if self.deadline_headroom_s < 0.0:
            raise ValueError("deadline_headroom_s must be non-negative")

    def tenant(self, name: str) -> TenantSpec:
        """The spec for ``name`` (default weight-1 spec when unknown)."""
        for spec in self.tenants:
            if spec.name == name:
                return spec
        return TenantSpec(name)

    def weights(self) -> dict[str, float]:
        return {spec.name: spec.weight for spec in self.tenants}

    def admission(self, pending: int, *, allow_degrade: bool = True) -> str:
        """Admission verdict for a new request given the current backlog."""
        if pending >= self.capacity:
            return SHED
        if (
            self.degrade_watermark < 1.0
            and pending >= self.degrade_watermark * self.capacity
            and allow_degrade
        ):
            return DEGRADE
        return ADMIT

    def deadline_for(
        self, tenant: str, submit_time: float, explicit: float | None
    ) -> float | None:
        """Absolute deadline of a request submitted now (or ``None``)."""
        if explicit is not None:
            return float(explicit)
        spec = self.tenant(tenant)
        if spec.deadline_s is None:
            return None
        return submit_time + spec.deadline_s


class FairScheduler:
    """Deterministic stride scheduler over tenant lanes.

    Parameters
    ----------
    weights:
        ``{tenant: weight}``; unknown tenants default to weight 1.
    """

    def __init__(self, weights: dict[str, float] | None = None) -> None:
        self._weights = dict(weights or {})
        self._passes: dict[str, float] = {}
        #: Virtual time: the pass of the most recently charged tenant.
        #: Tenants returning from idle are clamped to it, so an idle
        #: period earns no retroactive credit.
        self._vtime = 0.0

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def pick(self, candidates: tuple[str, ...]) -> str:
        """The candidate tenant with the smallest virtual pass.

        Ties break lexicographically by name, so the outcome is a pure
        function of the charge history.
        """
        if not candidates:
            raise ValueError("no candidate tenants to pick from")
        return min(
            candidates, key=lambda t: (self._passes.get(t, self._vtime), t)
        )

    def charge(self, tenant: str, work: float = 1.0) -> None:
        """Advance ``tenant``'s pass by ``work / weight``."""
        current = max(self._passes.get(tenant, self._vtime), self._vtime)
        self._passes[tenant] = current + float(work) / self.weight(tenant)
        self._vtime = current
