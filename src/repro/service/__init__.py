"""Solver-as-a-service: async streaming batch scheduler with QoS.

The service turns the repo's batched solvers into a multi-tenant streaming
facility: concurrent tenants submit individual solve requests; a dynamic
coalescer groups compatible requests into large hardware batches (the GPU
cost model bills a 64-system batch barely more than a 1-system one, so
coalescing is where the throughput lives); a QoS layer provides weighted
fair scheduling, per-tenant deadlines and shed-or-degrade backpressure;
and a dispatcher runs the real host numerics while billing virtual
wall-clock from the sync-aware GPU model, the PCIe transfer model and the
multi-GPU node model.

Everything is timed by a deterministic virtual clock — identical traffic
seeds produce identical schedules, latencies and results.
"""

from .clock import VirtualClock
from .coalescer import (
    CoalescedBatch,
    CoalescePolicy,
    Coalescer,
    CompatKey,
    compat_key,
    concat_requests,
)
from .dispatcher import Dispatcher, DispatchReport
from .qos import ADMIT, DEGRADE, SHED, FairScheduler, QosPolicy, TenantSpec
from .queue import (
    AdmissionQueue,
    RequestShed,
    SolveRequest,
    SolveTicket,
    TicketResult,
)
from .service import ServiceReport, SolverService
from .traffic import (
    TrafficPattern,
    TrafficRun,
    WorkloadSpec,
    arrival_times,
    make_request,
    run_traffic,
    serve_traffic,
    tridiag_template,
)

__all__ = [
    "ADMIT",
    "AdmissionQueue",
    "CoalescedBatch",
    "CoalescePolicy",
    "Coalescer",
    "CompatKey",
    "DEGRADE",
    "DispatchReport",
    "Dispatcher",
    "FairScheduler",
    "QosPolicy",
    "RequestShed",
    "SHED",
    "ServiceReport",
    "SolveRequest",
    "SolveTicket",
    "SolverService",
    "TenantSpec",
    "TicketResult",
    "TrafficPattern",
    "TrafficRun",
    "VirtualClock",
    "WorkloadSpec",
    "arrival_times",
    "compat_key",
    "concat_requests",
    "make_request",
    "run_traffic",
    "serve_traffic",
    "tridiag_template",
]
