"""Schedule traces: where every thread block ran, and when.

The makespans of :mod:`repro.gpu.scheduler` summarise a schedule to one
number; this module keeps the whole schedule — per-block (slot, start,
end) assignments — so the dispatch behaviour behind Fig. 6 can be
inspected directly: the MI100's wave barriers (every slot idles until the
slowest block of the wave finishes) versus the NVIDIA backfill (short ion
blocks slot in behind long electron blocks).

``render_gantt`` draws the trace as a text Gantt chart, one row per slot.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hardware import GpuSpec
from .occupancy import Occupancy

__all__ = ["BlockTrace", "ScheduleTrace", "trace_schedule", "render_gantt"]


@dataclass(frozen=True)
class BlockTrace:
    """One thread block's execution record.

    Attributes
    ----------
    block:
        Batch index of the system the block solved.
    slot:
        Concurrent-slot id (CU x resident-block lane).
    start, end:
        Execution interval in seconds.
    """

    block: int
    slot: int
    start: float
    end: float


@dataclass
class ScheduleTrace:
    """A complete schedule of one batched kernel.

    Attributes
    ----------
    blocks:
        Per-block records, in dispatch order.
    num_slots:
        Concurrent slots of the schedule.
    policy:
        ``"wave"`` or ``"flexible"``.
    """

    blocks: list[BlockTrace]
    num_slots: int
    policy: str

    @property
    def makespan(self) -> float:
        """End of the last block."""
        return max((b.end for b in self.blocks), default=0.0)

    def slot_busy_time(self) -> np.ndarray:
        """Summed execution time per slot."""
        busy = np.zeros(self.num_slots)
        for b in self.blocks:
            busy[b.slot] += b.end - b.start
        return busy

    @property
    def utilization(self) -> float:
        """Busy fraction of the slot-time area (1.0 = no idle gaps)."""
        ms = self.makespan
        if ms == 0.0:
            return 1.0
        return float(self.slot_busy_time().sum() / (self.num_slots * ms))


def trace_schedule(
    hw: GpuSpec, occupancy: Occupancy, block_times: np.ndarray
) -> ScheduleTrace:
    """Schedule ``block_times`` under ``hw``'s policy, keeping the trace.

    Produces exactly the schedules whose makespans
    :func:`repro.gpu.scheduler.schedule_blocks` reports (same dispatch
    rules), with per-block assignments retained.
    """
    t = np.asarray(block_times, dtype=np.float64)
    slots = occupancy.total_slots
    records: list[BlockTrace] = []

    if hw.scheduling == "wave":
        t0 = 0.0
        for wave_start in range(0, t.size, slots):
            wave = t[wave_start: wave_start + slots]
            for j, dur in enumerate(wave):
                records.append(
                    BlockTrace(
                        block=wave_start + j, slot=j,
                        start=t0, end=t0 + float(dur),
                    )
                )
            t0 += float(wave.max()) if wave.size else 0.0
        return ScheduleTrace(records, slots, "wave")

    finish = np.zeros(slots)
    for i, dur in enumerate(t):
        j = int(np.argmin(finish))
        records.append(
            BlockTrace(block=i, slot=j, start=float(finish[j]),
                       end=float(finish[j] + dur))
        )
        finish[j] += float(dur)
    return ScheduleTrace(records, slots, "flexible")


def render_gantt(
    trace: ScheduleTrace, *, width: int = 72, max_slots: int = 12
) -> str:
    """Text Gantt chart of a schedule (one row per slot).

    Each block is drawn as a run of its batch-index last digit; idle time
    is ``.``.  At most ``max_slots`` rows are shown.
    """
    ms = trace.makespan
    if ms == 0.0:
        return "(empty schedule)"
    shown = min(trace.num_slots, max_slots)
    rows = [[" "] * width for _ in range(shown)]
    for b in trace.blocks:
        if b.slot >= shown:
            continue
        c0 = int(b.start / ms * (width - 1))
        c1 = max(int(b.end / ms * (width - 1)), c0 + 1)
        ch = str(b.block % 10)
        for c in range(c0, min(c1, width)):
            rows[b.slot][c] = ch
    lines = [
        f"schedule: {trace.policy}, {trace.num_slots} slots, "
        f"makespan {ms * 1e3:.3f} ms, utilisation "
        f"{100 * trace.utilization:.0f}%"
    ]
    for j in range(shown):
        body = "".join(rows[j]).replace(" ", ".")
        lines.append(f"slot {j:>3} |{body}|")
    if shown < trace.num_slots:
        lines.append(f"... ({trace.num_slots - shown} more slots)")
    return "\n".join(lines)
