"""Roofline analysis of the batched kernels.

Section IV's design discussion is a roofline argument in prose: the
batched solves are small, the data should live close to the compute units,
and the SpMV is memory-bound.  This module makes the argument
quantitative: given a kernel's operation counts and its modelled memory
traffic on a GPU, it reports the arithmetic intensity, the machine
balance, which side of the ridge the kernel sits on, and the attainable
performance — the numbers behind statements like "the work done to solve
the system using an exact factorization does not pay off".
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.solvers.schedule import solver_schedule
from .hardware import GpuSpec
from .kernel import (
    KernelWork,
    banded_qr_work,
    dense_lu_work,
    iteration_work,
    spmv_work,
    storage_for_solver,
)
from .memory import estimate_memory
from .occupancy import compute_occupancy

__all__ = ["RooflinePoint", "analyze_kernel", "solver_roofline_report"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on a GPU's roofline.

    Attributes
    ----------
    name:
        Kernel label.
    intensity:
        Arithmetic intensity in flop/byte (bytes counted at the level the
        traffic actually reaches, HBM + L2 weighted by their bandwidths).
    machine_balance:
        The GPU's ridge point in flop/byte (peak FP64 / achieved HBM BW).
    bound:
        ``"memory"`` or ``"compute"``.
    attainable_gflops:
        min(peak, intensity * bandwidth), in Gflop/s.
    peak_fraction:
        Attainable performance as a fraction of peak FP64.
    """

    name: str
    intensity: float
    machine_balance: float
    bound: str
    attainable_gflops: float
    peak_fraction: float


def analyze_kernel(
    hw: GpuSpec,
    name: str,
    work: KernelWork,
    *,
    effective_bytes: float | None = None,
) -> RooflinePoint:
    """Place one kernel on ``hw``'s roofline.

    ``effective_bytes`` overrides the byte count (e.g. post-cache HBM
    traffic from the memory model); defaults to the kernel's raw traffic.
    """
    bw = hw.mem_bw_gbs * 1e9 * hw.bw_efficiency
    peak = hw.peak_fp64_tflops * 1e12
    data = work.total_bytes if effective_bytes is None else effective_bytes
    intensity = work.flops / max(data, 1.0)
    balance = peak / bw
    attainable = min(peak, intensity * bw)
    return RooflinePoint(
        name=name,
        intensity=float(intensity),
        machine_balance=float(balance),
        bound="compute" if intensity >= balance else "memory",
        attainable_gflops=float(attainable / 1e9),
        peak_fraction=float(attainable / peak),
    )


def solver_roofline_report(
    hw: GpuSpec,
    num_rows: int,
    nnz: int,
    *,
    stored_nnz: int | None = None,
    mean_iterations: float = 20.0,
    kl: int | None = None,
    ku: int | None = None,
    value_bytes: int = 8,
) -> list[RooflinePoint]:
    """Roofline points for the kernels of the paper's comparison.

    Covers the batched SpMV (all three sparse formats), one BiCGSTAB
    iteration (with the §IV-D placement and cache model applied, so the
    intensity reflects *post-cache* traffic), the banded QR, and the dense
    LU.  ``value_bytes`` sets the stored-value size for the SpMV and
    solver-iteration points (4 at fp32 roughly doubles their arithmetic
    intensity); the direct baselines stay fp64.
    """
    points = []
    for fmt, stored in (("csr", None), ("ell", stored_nnz), ("dia", stored_nnz)):
        w = spmv_work(num_rows, nnz, fmt, stored_nnz=stored, value_bytes=value_bytes)
        points.append(analyze_kernel(hw, f"spmv-{fmt}", w))

    storage = storage_for_solver(
        "bicgstab", num_rows, hw.shared_budget_per_block(), value_bytes=value_bytes
    )
    occ = compute_occupancy(hw, max(storage.shared_bytes_used, 1), num_rows)
    iter_work = iteration_work(
        solver_schedule("bicgstab"), num_rows, nnz, "ell", storage,
        stored_nnz=stored_nnz, value_bytes=value_bytes,
    )
    stored = nnz if stored_nnz is None else stored_nnz
    mem = estimate_memory(
        hw, iter_work,
        shared_bytes_per_block=storage.shared_bytes_used,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=occ.total_slots,
        reuse_passes=max(mean_iterations, 1.0),
        unique_matrix_bytes=stored * value_bytes,
        unique_index_bytes=stored * 4,
        unique_rhs_bytes=num_rows * value_bytes,
    )
    effective = mem.hbm_bytes + mem.l2_bytes / hw.l2_bw_multiplier
    points.append(
        analyze_kernel(
            hw, "bicgstab-iter (post-cache)", iter_work,
            effective_bytes=max(effective, 1.0),
        )
    )

    if kl is not None and ku is not None:
        points.append(analyze_kernel(hw, "banded-qr", banded_qr_work(num_rows, kl, ku)))
    points.append(analyze_kernel(hw, "dense-lu", dense_lu_work(num_rows)))
    return points


def format_roofline(points: list[RooflinePoint]) -> str:
    """Render roofline points as an aligned text table."""
    lines = [
        f"{'kernel':<26} {'flop/byte':>10} {'bound':>8} "
        f"{'attainable GF/s':>16} {'% of peak':>10}"
    ]
    for p in points:
        lines.append(
            f"{p.name:<26} {p.intensity:10.3f} {p.bound:>8} "
            f"{p.attainable_gflops:16.1f} {100 * p.peak_fraction:10.1f}"
        )
    return "\n".join(lines)
