"""CPU baseline cost model: Kokkos-parallel ``dgbsv`` on the Skylake node.

The proxy app's production path runs each banded factor-and-solve as a
work item on one CPU core, distributing the batch over 38 of the node's 40
cores (Section V).  The model charges each system its true ``dgbsv``
operation count at the core's sustained rate and schedules statically:
``ceil(num_batch / cores)`` rounds.  Like the GPU wave model this produces
small steps at multiples of the core count — they are invisible at the
paper's scale because one round is cheap relative to the total.

The iterative-CPU variant (:func:`estimate_cpu_iterative`) exists for the
ablation studies; the paper's CPU baseline is the direct solver only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.solvers.schedule import solver_schedule
from .hardware import CpuSpec
from .kernel import banded_lu_work, iteration_work, storage_for_solver

__all__ = ["CpuSolveEstimate", "estimate_cpu_dgbsv", "estimate_cpu_iterative"]


@dataclass(frozen=True)
class CpuSolveEstimate:
    """A modelled CPU batched solve.

    Attributes
    ----------
    total_time_s:
        Wall-clock for the batch.
    per_entry_time_s:
        Mean time per system.
    per_system_s:
        Time of one factor-and-solve on one core.
    rounds:
        Static-scheduling rounds (``ceil(num_batch / cores_used)``).
    """

    total_time_s: float
    per_entry_time_s: float
    per_system_s: float
    rounds: int


def estimate_cpu_dgbsv(
    cpu: CpuSpec, num_rows: int, kl: int, ku: int, num_batch: int
) -> CpuSolveEstimate:
    """Model the Kokkos-parallelised LAPACK ``dgbsv`` batch solve."""
    if num_batch < 1:
        raise ValueError("num_batch must be >= 1")
    work = banded_lu_work(num_rows, kl, ku)
    t_sys = work.flops / cpu.effective_flops_per_core
    rounds = math.ceil(num_batch / cpu.cores_used)
    total = rounds * t_sys
    return CpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / num_batch,
        per_system_s=t_sys,
        rounds=rounds,
    )


def estimate_cpu_iterative(
    cpu: CpuSpec,
    num_rows: int,
    nnz: int,
    iterations: np.ndarray,
    *,
    fmt: str = "csr",
    stored_nnz: int | None = None,
) -> CpuSolveEstimate:
    """Model a batched iterative solve on the CPU (one system per core).

    Iterative solvers on the CPU run at memory-stream rates rather than
    peak flops for these sizes; the model charges the per-iteration flop
    count at the ``dgbsv`` sustained rate, which is mildly favourable to
    the CPU — the comparison the paper cares about (GPU iterative vs CPU
    direct) is unaffected.
    """
    iterations = np.asarray(iterations, dtype=np.float64)
    num_batch = iterations.shape[0]
    if num_batch < 1:
        raise ValueError("iterations must be non-empty")
    storage = storage_for_solver("bicgstab", num_rows, 0)
    work = iteration_work(
        solver_schedule("bicgstab"), num_rows, nnz, fmt, storage,
        stored_nnz=stored_nnz,
    )
    t_iter = work.flops / cpu.effective_flops_per_core
    per_system = iterations * t_iter

    # Static round-robin over cores: core c gets systems c, c+P, ...
    cores = cpu.cores_used
    core_loads = np.zeros(cores)
    for c in range(cores):
        core_loads[c] = per_system[c::cores].sum()
    total = float(core_loads.max()) if num_batch else 0.0
    return CpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / num_batch,
        per_system_s=float(per_system.mean()),
        rounds=math.ceil(num_batch / cores),
    )
