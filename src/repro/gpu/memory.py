"""Memory-hierarchy model: cache-hit estimation and effective access time.

Section IV-C's design keeps read-only data (matrix values, indices, RHS)
cached in L1 and the read-write solver vectors in shared memory.  This
module estimates how well that works out for a given problem/hardware pair.

Modelling choices (each maps to a physical mechanism):

* **L1** — capacity left after the shared-memory allocation, shared by the
  resident blocks.  A block's *unique* read-only working set (matrix
  values, its share of the common index data, the RHS) that fits stays
  resident across the fused kernel's iterations, so re-reads hit.
* **L2** — device-wide, but the competing working set is only that of the
  **concurrently resident** systems (``active_systems``), not the whole
  batch: a block's data is dead once it retires.  The shared sparsity
  metadata is a single copy for the whole device — the batched formats'
  storage sharing is precisely what makes it L2-resident.
* **HBM** — whatever misses both.

Returned hit rates feed Table II; the byte split feeds the roofline in
:mod:`repro.gpu.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hardware import GpuSpec
from .kernel import KernelWork

__all__ = ["MemoryEstimate", "estimate_memory"]


@dataclass(frozen=True)
class MemoryEstimate:
    """Traffic split across the hierarchy, per system per kernel phase.

    Attributes
    ----------
    l1_hit_rate:
        Fraction of global-memory accesses served by L1.
    l2_hit_rate:
        Fraction of L1 misses served by L2.
    hbm_bytes:
        Bytes per system *per pass* (per iteration) that reach HBM.
    l2_bytes:
        Bytes per system per pass served by L2.
    total_bytes:
        All global traffic per system per pass (shared memory excluded).
    """

    l1_hit_rate: float
    l2_hit_rate: float
    hbm_bytes: float
    l2_bytes: float
    total_bytes: float

    def memory_time(self, hw: GpuSpec) -> float:
        """Seconds one CU spends on this traffic (fair-share achieved BW)."""
        bw = hw.mem_bw_per_cu * hw.bw_efficiency
        t_hbm = self.hbm_bytes / bw
        t_l2 = self.l2_bytes / (bw * hw.l2_bw_multiplier)
        return t_hbm + t_l2


def estimate_memory(
    hw: GpuSpec,
    work: KernelWork,
    *,
    shared_bytes_per_block: int,
    blocks_per_cu: int,
    active_systems: int,
    reuse_passes: float = 1.0,
    unique_matrix_bytes: float | None = None,
    unique_index_bytes: float | None = None,
    unique_rhs_bytes: float | None = None,
) -> MemoryEstimate:
    """Estimate the hierarchy split of one system's kernel traffic.

    Parameters
    ----------
    hw:
        Target GPU.
    work:
        Per-iteration (or per-kernel) traffic by stream for one system.
    shared_bytes_per_block:
        Dynamic shared memory each block holds (reduces L1 capacity).
    blocks_per_cu:
        Resident blocks competing for the same L1.
    active_systems:
        Systems concurrently resident on the device (caps L2 pressure).
    reuse_passes:
        Times the traffic in ``work`` repeats during the block's lifetime
        (the iteration count for iterative solves): only repetition can
        produce L1 hits.
    unique_matrix_bytes, unique_index_bytes, unique_rhs_bytes:
        Distinct bytes behind each stream (a BiCGSTAB iteration reads the
        matrix twice, so traffic is 2x the unique set).  Default: the
        per-pass traffic itself.
    """
    if reuse_passes < 1.0:
        raise ValueError("reuse_passes must be >= 1")
    if active_systems < 1:
        raise ValueError("active_systems must be >= 1")

    uniq_mat = work.matrix_bytes if unique_matrix_bytes is None else unique_matrix_bytes
    uniq_idx = work.index_bytes if unique_index_bytes is None else unique_index_bytes
    uniq_rhs = work.rhs_bytes if unique_rhs_bytes is None else unique_rhs_bytes

    # --- L1 -----------------------------------------------------------------
    l1_capacity = max(
        hw.l1_shared_per_cu_bytes - shared_bytes_per_block * blocks_per_cu, 0
    )
    unique_ws = uniq_mat + uniq_idx + uniq_rhs
    resident_fraction = (
        min(1.0, l1_capacity / (blocks_per_cu * unique_ws)) if unique_ws > 0 else 0.0
    )
    cacheable_traffic = (
        (work.matrix_bytes + work.index_bytes + work.rhs_bytes) * reuse_passes
    )
    # With full residency the only misses are the compulsory first touches.
    ideal_hit = 1.0 - unique_ws / cacheable_traffic if cacheable_traffic > 0 else 0.0
    l1_hit_cacheable = resident_fraction * max(ideal_hit, 0.0)

    streaming_traffic = work.vector_bytes * reuse_passes  # spilled vectors
    total = cacheable_traffic + streaming_traffic
    l1_hit_overall = (
        cacheable_traffic * l1_hit_cacheable / total if total > 0 else 0.0
    )

    # --- L2 -----------------------------------------------------------------
    l1_misses = total * (1.0 - l1_hit_overall)
    # Stream-wise L1 misses (vectors never hit L1; cacheable streams share
    # the blended rate).
    miss_idx = work.index_bytes * reuse_passes * (1.0 - l1_hit_cacheable)
    miss_vec = streaming_traffic
    miss_val = l1_misses - miss_idx - miss_vec

    # Device-resident working set competing for L2: per-system values, RHS
    # and spilled vectors of the active systems, plus ONE copy of the
    # shared index data.
    spilled_unique = work.vector_bytes / 6.0 if work.vector_bytes else 0.0
    device_set = (uniq_mat + uniq_rhs + spilled_unique) * active_systems + uniq_idx
    l2_fraction = min(1.0, hw.l2_bytes / device_set) if device_set > 0 else 0.0

    idx_hit = 1.0 if uniq_idx <= hw.l2_bytes else 0.5
    l2_hits = miss_idx * idx_hit + (miss_val + miss_vec) * l2_fraction
    l2_hit_rate = l2_hits / l1_misses if l1_misses > 0 else 0.0

    hbm_bytes = max(l1_misses - l2_hits, 0.0)
    # Normalise the byte quantities to one pass so callers can charge them
    # per iteration; the hit rates are lifetime averages either way.
    return MemoryEstimate(
        l1_hit_rate=float(min(max(l1_hit_overall, 0.0), 1.0)),
        l2_hit_rate=float(min(max(l2_hit_rate, 0.0), 1.0)),
        hbm_bytes=float(hbm_bytes / reuse_passes),
        l2_bytes=float(l2_hits / reuse_passes),
        total_bytes=float(total / reuse_passes),
    )
