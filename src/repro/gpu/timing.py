"""End-to-end solve-time estimation on the modelled GPUs.

This is the composition layer: operation counts (:mod:`.kernel`), warp
geometry (:mod:`.warp`), shared-memory placement
(:mod:`repro.core.workspace` via :func:`.kernel.storage_for_solver`),
occupancy (:mod:`.occupancy`), the cache model (:mod:`.memory`) and the
block scheduler (:mod:`.scheduler`) combine into wall-clock estimates for

* the fused batched iterative solve (one kernel launch; per-system block
  times from the *actual* per-system iteration counts of a
  :class:`~repro.core.types.SolveResult`),
* the batched SpMV kernel alone (Fig. 7), and
* the batched direct QR baseline (Fig. 6).

Per-block time follows a compute/memory roofline at thread-block-slot
granularity; the memory term is stream-weighted by lane utilisation
(``u^-0.75`` parallelism penalty): matrix/index traffic moves during the
SpMV phase at the SpMV's utilisation, vector traffic during the dense
phases.  Under-filled warps (warp-per-row CSR with 9 nnz/row) issue fewer
concurrent loads and lose achieved bandwidth even when memory-bound — this
is what separates the CSR and ELL curves of Fig. 6 in the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.solvers.schedule import solver_schedule
from ..core.workspace import StorageConfig
from .hardware import GpuSpec
from .kernel import (
    KernelWork,
    banded_qr_work,
    dense_lu_work,
    iteration_work,
    kernel_launches,
    reduction_round_scale,
    reduction_rounds,
    setup_work,
    spmv_work,
    storage_for_solver,
)
from .memory import MemoryEstimate, estimate_memory
from .occupancy import Occupancy, compute_occupancy
from .scheduler import schedule_blocks
from .warp import ell_spmv_utilization, spmv_utilization, solver_utilization

__all__ = ["GpuSolveEstimate", "estimate_iterative_solve", "estimate_spmv",
           "estimate_direct_qr", "estimate_dense_lu"]


@dataclass(frozen=True)
class GpuSolveEstimate:
    """A modelled batched-solve execution.

    Attributes
    ----------
    total_time_s:
        Wall-clock of the whole batch (launch + sync + makespan).
    per_entry_time_s:
        ``total_time_s / num_batch`` (the right panel of Fig. 6).
    launch_s:
        Kernel-launch overhead component — one launch for the fused
        kernel, one per component kernel otherwise.
    block_times_s:
        Per-system block execution times.
    storage:
        Shared-memory placement used.
    occupancy:
        Residency outcome.
    memory:
        Cache/traffic estimate per iteration (or per kernel for direct).
    warp_utilization:
        Whole-kernel lane utilisation (Table II metric).
    sync_s:
        Device-wide reduction-round cost: the schedule's sync points per
        iteration times the kernel's trip count (the batch-maximum
        iteration count) times the hardware's per-round latency.  This is
        the term the pipelined solver variants shrink.
    """

    total_time_s: float
    per_entry_time_s: float
    launch_s: float
    block_times_s: np.ndarray
    storage: StorageConfig | None
    occupancy: Occupancy
    memory: MemoryEstimate
    warp_utilization: float
    sync_s: float = 0.0


#: Exponent of the memory-parallelism penalty ``u^-MEM_PARALLEL_EXP``:
#: a warp running at lane utilisation ``u`` issues proportionally fewer
#: concurrent memory requests, costing achieved bandwidth somewhat
#: sub-linearly (latency hiding by other warps recovers part of it).
MEM_PARALLEL_EXP = 0.75


def _slot_times(
    hw: GpuSpec,
    work: KernelWork,
    occ: Occupancy,
    mem: MemoryEstimate,
    u_spmv: float,
    u_dense: float,
    *,
    compute_efficiency: float | None = None,
) -> float:
    """Roofline time of one unit of ``work`` on one block slot.

    The memory term is stream-weighted: matrix/index traffic moves during
    the SpMV phase at the SpMV's lane utilisation, vector/RHS traffic
    during the (fully-parallel) dense phases.
    """
    eff = hw.fp64_efficiency if compute_efficiency is None else compute_efficiency
    u_blend = 0.6 * u_spmv + 0.4 * u_dense
    slot_flops = hw.peak_fp64_per_cu * eff * u_blend / occ.blocks_per_cu
    t_compute = work.flops / max(slot_flops, 1.0)

    total = max(work.total_bytes, 1.0)
    frac_spmv = (work.matrix_bytes + work.index_bytes) / total
    penalty = frac_spmv / max(u_spmv, 1e-3) ** MEM_PARALLEL_EXP + (
        1.0 - frac_spmv
    ) / max(u_dense, 1e-3) ** MEM_PARALLEL_EXP
    t_memory = mem.memory_time(hw) * occ.blocks_per_cu * penalty
    return max(t_compute, t_memory)


def estimate_iterative_solve(
    hw: GpuSpec,
    fmt: str,
    num_rows: int,
    nnz: int,
    iterations: np.ndarray,
    *,
    stored_nnz: int | None = None,
    solver: str = "bicgstab",
    preconditioner: str = "jacobi",
    gmres_restart: int = 30,
    value_bytes: int = 8,
    fused: bool = True,
    shared_budget_bytes: int | None = None,
) -> GpuSolveEstimate:
    """Model the fused batched iterative solve.

    Parameters
    ----------
    hw:
        Target GPU.
    fmt:
        ``"csr"``, ``"ell"``, or ``"dia"``.
    num_rows, nnz:
        Per-system dimensions (true non-zeros).
    iterations:
        Per-system iteration counts — take them from a real
        :class:`~repro.core.types.SolveResult` so the model charges the
        numerics actually required.
    stored_nnz:
        Stored entries for padded formats (default ``nnz``).
    solver:
        Which solver's declared :class:`~repro.core.solvers.schedule.
        OpSchedule` to charge — each solver gets its own per-iteration
        work, vector footprint, and spill traffic.  Unknown names raise
        ``ValueError``.
    gmres_restart:
        GMRES restart length ``m``; sizes the Krylov basis for the §IV-D
        placement and the per-iteration dot count.  Ignored otherwise.
    value_bytes:
        Bytes per stored value: 8 for fp64 (default), 4 for the fp32 and
        mixed precision policies.  Halves every value-traffic stream,
        doubles the vector capacity of the shared-memory budget, and
        doubles the usable compute throughput (GPU fp32 peak is twice the
        fp64 peak).
    fused:
        ``True`` (the paper's production kernel) bills ONE kernel launch
        for the whole solve; ``False`` models a library-composed
        implementation that launches every fused kernel group of the
        schedule separately, paying ``launch_overhead_us`` per component
        kernel per iteration.
    shared_budget_bytes:
        Per-block dynamic shared-memory budget for the §IV-D placement.
        Defaults to ``hw.shared_budget_per_block()`` (the hardware's
        default residency target); the autotuning gym passes the budgets
        of other residency targets to price the occupancy-vs-spill trade.
    """
    iterations = np.asarray(iterations, dtype=np.float64)
    num_batch = iterations.shape[0]

    if shared_budget_bytes is None:
        shared_budget_bytes = hw.shared_budget_per_block()
    schedule = solver_schedule(solver, gmres_restart=gmres_restart)
    storage = storage_for_solver(
        solver, num_rows, int(shared_budget_bytes),
        gmres_restart=gmres_restart, value_bytes=value_bytes,
    )
    occ = compute_occupancy(hw, storage.shared_bytes_used, num_rows)

    iter_work = iteration_work(
        schedule, num_rows, nnz, fmt, storage,
        stored_nnz=stored_nnz, preconditioner=preconditioner,
        value_bytes=value_bytes,
    )
    setup = setup_work(
        schedule, num_rows, nnz, fmt, stored_nnz=stored_nnz,
        value_bytes=value_bytes,
    )

    stored = nnz if stored_nnz is None else stored_nnz
    value_b = value_bytes
    uniq_mat = stored * value_b
    # Unique shared index metadata is format-specific (DIA: offsets only);
    # take it from the per-SpMV work model rather than re-deriving it here.
    uniq_idx = spmv_work(num_rows, nnz, fmt, stored_nnz=stored_nnz).index_bytes
    mean_iters = float(iterations.mean()) if num_batch else 1.0
    active = min(num_batch, occ.total_slots)
    mem = estimate_memory(
        hw, iter_work,
        shared_bytes_per_block=storage.shared_bytes_used,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=active,
        reuse_passes=max(mean_iters, 1.0),
        unique_matrix_bytes=uniq_mat,
        unique_index_bytes=uniq_idx,
        unique_rhs_bytes=num_rows * value_b,
    )
    nnz_row = max(nnz // max(num_rows, 1), 1)
    u_spmv = spmv_utilization(fmt, num_rows, nnz_row, hw)
    u_dense = ell_spmv_utilization(num_rows, hw.warp_size)
    util = solver_utilization(fmt, num_rows, nnz_row, hw)

    # GPU fp32 peak throughput is double the fp64 peak; expressed here as
    # a compute-efficiency scale so the roofline's compute leg tracks the
    # precision policy alongside the halved value traffic.
    eff = hw.fp64_efficiency * (8.0 / value_bytes)
    t_iter = _slot_times(
        hw, iter_work, occ, mem, u_spmv, u_dense, compute_efficiency=eff
    )
    mem_setup = estimate_memory(
        hw, setup,
        shared_bytes_per_block=storage.shared_bytes_used,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=active,
        reuse_passes=1.0,
    )
    t_setup = _slot_times(
        hw, setup, occ, mem_setup, u_spmv, u_dense, compute_efficiency=eff
    )

    block_times = t_setup + iterations * t_iter
    # The kernel's loop trips until the *slowest* system converges: both
    # the launch count of the unfused composition and the grid-wide
    # reduction rounds scale with the batch-maximum iteration count.
    iters_max = float(iterations.max()) if num_batch else 0.0
    launch = (
        kernel_launches(schedule, iters_max, fused=fused)
        * hw.launch_overhead_us * 1e-6
    )
    # One block per system, one lane per row (capped at the 1024-lane
    # block limit): targets whose kernels compile narrower than the warp
    # (PVC SIMD16) pay extra barrier phases per reduction round.
    sync_scale = reduction_round_scale(hw, min(num_rows, 1024))
    sync_s = (
        reduction_rounds(schedule, iters_max)
        * sync_scale * hw.sync_latency_us * 1e-6
    )
    makespan = schedule_blocks(hw, occ, block_times)
    total = launch + sync_s + makespan
    return GpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / max(num_batch, 1),
        launch_s=launch,
        block_times_s=block_times,
        storage=storage,
        occupancy=occ,
        memory=mem,
        warp_utilization=util,
        sync_s=sync_s,
    )


def estimate_spmv(
    hw: GpuSpec,
    fmt: str,
    num_rows: int,
    nnz: int,
    num_batch: int,
    *,
    stored_nnz: int | None = None,
    repeats: int = 1,
    value_bytes: int = 8,
) -> GpuSolveEstimate:
    """Model the standalone batched SpMV kernel (Fig. 7)."""
    work = spmv_work(num_rows, nnz, fmt, stored_nnz=stored_nnz, value_bytes=value_bytes)
    occ = compute_occupancy(hw, 0, num_rows)
    mem = estimate_memory(
        hw, work,
        shared_bytes_per_block=0,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=min(num_batch, occ.total_slots),
        reuse_passes=float(max(repeats, 1)),
    )
    nnz_row = max(1, round(nnz / max(num_rows, 1)))
    util = spmv_utilization(fmt, num_rows, nnz_row, hw)
    t_block = _slot_times(
        hw, work, occ, mem, util, util,
        compute_efficiency=hw.fp64_efficiency * (8.0 / value_bytes),
    ) * repeats
    block_times = np.full(num_batch, t_block)
    launch = hw.launch_overhead_us * 1e-6 * repeats
    total = launch + schedule_blocks(hw, occ, block_times)
    return GpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / max(num_batch, 1),
        launch_s=launch,
        block_times_s=block_times,
        storage=None,
        occupancy=occ,
        memory=mem,
        warp_utilization=util,
    )


def estimate_dense_lu(
    hw: GpuSpec,
    num_rows: int,
    num_batch: int,
) -> GpuSolveEstimate:
    """Model a batched *dense* LU solve (the DGETRF-style related work).

    Batched dense factorisations are mature and run at good efficiency on
    GPUs — the problem for the collision systems is the cubic flop count
    itself, so this estimate deliberately grants the kernel full dense-BLAS
    efficiency (no extra penalty factor) and lets the O(n^3) work speak.
    """
    work = dense_lu_work(num_rows)
    occ = compute_occupancy(hw, 0, num_rows)
    mem = estimate_memory(
        hw, work,
        shared_bytes_per_block=0,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=min(num_batch, occ.total_slots),
        reuse_passes=float(max(num_rows // 8, 2)),  # blocked reuse
    )
    util = ell_spmv_utilization(num_rows, hw.warp_size)
    t_block = _slot_times(hw, work, occ, mem, util, util)
    block_times = np.full(num_batch, t_block)
    launch = hw.launch_overhead_us * 1e-6 * 2  # factor + solve
    total = launch + schedule_blocks(hw, occ, block_times)
    return GpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / max(num_batch, 1),
        launch_s=launch,
        block_times_s=block_times,
        storage=None,
        occupancy=occ,
        memory=mem,
        warp_utilization=util,
    )


def estimate_direct_qr(
    hw: GpuSpec,
    num_rows: int,
    kl: int,
    ku: int,
    num_batch: int,
) -> GpuSolveEstimate:
    """Model the cuSolver-style batched sparse QR (Fig. 6 baseline).

    The QR kernel factorises exactly: no early exit, long sequential
    rotation chains over the band.  Its compute throughput is further
    multiplied by ``hw.qr_parallel_efficiency`` (see
    :mod:`repro.gpu.hardware`).
    """
    work = banded_qr_work(num_rows, kl, ku)
    occ = compute_occupancy(hw, 0, num_rows)
    mem = estimate_memory(
        hw, work,
        shared_bytes_per_block=0,
        blocks_per_cu=occ.blocks_per_cu,
        active_systems=min(num_batch, occ.total_slots),
        reuse_passes=float(max(kl, 2)),  # band re-traversed per column sweep
    )
    util = ell_spmv_utilization(num_rows, hw.warp_size)
    t_block = _slot_times(
        hw, work, occ, mem, util, util,
        compute_efficiency=hw.fp64_efficiency * hw.qr_parallel_efficiency,
    )
    block_times = np.full(num_batch, t_block)
    launch = hw.launch_overhead_us * 1e-6 * 3  # analysis + factor + solve
    total = launch + schedule_blocks(hw, occ, block_times)
    return GpuSolveEstimate(
        total_time_s=total,
        per_entry_time_s=total / max(num_batch, 1),
        launch_s=launch,
        block_times_s=block_times,
        storage=None,
        occupancy=occ,
        memory=mem,
        warp_utilization=util,
    )
