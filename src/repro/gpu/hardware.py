"""Hardware catalog — Table I of the paper, plus microarchitectural knobs.

The performance model is parameterised entirely from this module.  The
headline numbers (peak FP64, memory bandwidth, cache sizes, compute-unit
counts, warp widths) are the paper's Table I values taken from the vendor
white papers.  The remaining fields are microarchitectural constants the
model needs (launch overhead, scheduling policy, achievable-fraction
efficiencies); they are *calibration* parameters, documented here and in
EXPERIMENTS.md, and deliberately few in number:

* ``fp64_efficiency`` — fraction of peak FP64 a latency-bound batched
  kernel sustains (small systems never reach peak);
* ``qr_parallel_efficiency`` — the additional penalty of the batched
  direct QR kernel (long sequential dependency chains over the band,
  warp-serial rotations), responsible for the 10-30x gap of Fig. 6;
* ``dgbsv_efficiency`` on the CPU — achieved fraction of per-core peak for
  LAPACK ``dgbsv`` on n~1000 banded systems.

Everything else in the model (staircase scheduling, warp utilisation,
format traffic, shared-memory placement) is derived, not fitted.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "V100",
    "A100",
    "H100",
    "MI100",
    "MI250X",
    "PVC",
    "SKYLAKE_NODE",
    "GPUS",
    "TABLE1_GPUS",
]

KIB = 1024
MIB = 1024 * 1024


@dataclass(frozen=True)
class GpuSpec:
    """One GPU model as the performance model sees it.

    Table I fields
    --------------
    peak_fp64_tflops, mem_bw_gbs, l1_shared_per_cu_kib, l2_mib, num_cus.

    Microarchitecture fields
    ------------------------
    warp_size:
        SIMT width (32 NVIDIA, 64 AMD wavefronts).
    max_shared_per_block_kib:
        Upper limit of dynamic shared memory one thread block may request.
    scheduling:
        ``"flexible"`` (NVIDIA: blocks dispatched to SMs as they drain —
        smooth batch-size scaling) or ``"wave"`` (MI100: the paper observes
        discrete jumps at multiples of 120 CUs).
    launch_overhead_us:
        Host-side cost of one kernel launch.
    sync_latency_us:
        Cost of one device-wide reduction round (grid synchronization +
        scalar broadcast) inside the fused solver kernel.  A calibration
        parameter like ``launch_overhead_us``: cooperative-group grid
        barriers measure a few microseconds on Volta/Ampere and somewhat
        more on CDNA.  Billed per *reduction round* — a fused multi-dot
        still pays once — so it is what the pipelined solver variants
        actually save.
    fp64_efficiency:
        Achievable fraction of peak FP64 in the fused batched kernels.
    qr_parallel_efficiency:
        Further multiplier on compute throughput for the batched direct QR.
    l2_bw_multiplier:
        L2 bandwidth relative to (achieved) HBM bandwidth.
    bw_efficiency:
        Achieved fraction of peak memory bandwidth for the batched
        kernels' access patterns (gathers + short streams; CDNA achieves a
        markedly lower fraction than Volta/Ampere on such patterns).
    target_blocks_per_cu:
        Residency the §IV-D planner aims for when sizing shared memory.
    subgroup_width:
        SIMD width the *compiled kernels* use for the intra-block
        reduction tree.  On CUDA/HIP targets this equals ``warp_size``
        and has no effect.  Intel's SYCL backend compiles the batched
        kernels SIMD16 even though Xe-HPC exposes 32-wide subgroups
        (arXiv:2308.08417), so each shared-local-memory reduction needs
        more barrier-separated phases: ``ceil(log_width(num_lanes))``
        instead of ``ceil(log_warp(num_lanes))``.  ``0`` (the default)
        means "same as ``warp_size``".
    """

    name: str
    peak_fp64_tflops: float
    mem_bw_gbs: float
    l1_shared_per_cu_kib: int
    l2_mib: float
    num_cus: int
    warp_size: int
    max_shared_per_block_kib: int
    scheduling: str
    launch_overhead_us: float = 10.0
    sync_latency_us: float = 4.0
    fp64_efficiency: float = 0.5
    qr_parallel_efficiency: float = 0.02
    l2_bw_multiplier: float = 3.0
    bw_efficiency: float = 0.8
    target_blocks_per_cu: int = 2
    subgroup_width: int = 0

    def __post_init__(self) -> None:
        if self.scheduling not in ("flexible", "wave"):
            raise ValueError(
                f"scheduling must be 'flexible' or 'wave', got {self.scheduling!r}"
            )
        for field_name in ("peak_fp64_tflops", "mem_bw_gbs", "l2_mib"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        for field_name in ("num_cus", "l1_shared_per_cu_kib",
                           "max_shared_per_block_kib", "target_blocks_per_cu"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.warp_size < 1 or self.warp_size & (self.warp_size - 1):
            raise ValueError(f"warp_size must be a power of two, got {self.warp_size}")
        if self.max_shared_per_block_kib > self.l1_shared_per_cu_kib:
            raise ValueError(
                "max_shared_per_block_kib cannot exceed l1_shared_per_cu_kib"
            )
        for field_name in ("fp64_efficiency", "bw_efficiency"):
            if not 0.0 < getattr(self, field_name) <= 1.0:
                raise ValueError(f"{field_name} must be in (0, 1]")
        if self.subgroup_width == 0:
            # Sentinel: kernels reduce at the native warp width.
            object.__setattr__(self, "subgroup_width", self.warp_size)
        if (
            self.subgroup_width < 1
            or self.subgroup_width & (self.subgroup_width - 1)
            or self.subgroup_width > self.warp_size
        ):
            raise ValueError(
                "subgroup_width must be a power of two <= warp_size, "
                f"got {self.subgroup_width}"
            )

    # -- derived quantities --------------------------------------------------

    @property
    def peak_fp64_per_cu(self) -> float:
        """Peak FP64 flop/s available to one compute unit."""
        return self.peak_fp64_tflops * 1e12 / self.num_cus

    @property
    def mem_bw_per_cu(self) -> float:
        """Fair-share HBM bandwidth (bytes/s) per compute unit."""
        return self.mem_bw_gbs * 1e9 / self.num_cus

    @property
    def l1_shared_per_cu_bytes(self) -> int:
        """Unified L1 + shared capacity per CU in bytes."""
        return self.l1_shared_per_cu_kib * KIB

    @property
    def l2_bytes(self) -> int:
        """L2 capacity in bytes."""
        return int(self.l2_mib * MIB)

    def shared_budget_per_block(self, target_blocks_per_cu: int | None = None) -> int:
        """Dynamic shared memory budget per thread block (§IV-D policy).

        The planner divides the configurable shared memory among
        ``target_blocks_per_cu`` resident blocks.  NVIDIA GPUs target two
        blocks per SM for latency hiding — on the V100 (96 KiB
        configurable) this yields 48 KiB per block and therefore 6 of
        BiCGStab's 9 vectors in shared memory, the paper's reported
        outcome.  The MI100 targets one block per CU (the paper's observed
        dispatch granularity: makespan jumps at multiples of 120 = one
        block per CU), so a block may claim the whole 64 KiB LDS.
        """
        target = self.target_blocks_per_cu if target_blocks_per_cu is None else target_blocks_per_cu
        if target < 1:
            raise ValueError("target_blocks_per_cu must be >= 1")
        return self.max_shared_per_block_kib * KIB // target


@dataclass(frozen=True)
class CpuSpec:
    """A CPU node running the Kokkos-parallelised ``dgbsv`` baseline.

    The paper's baseline is one dual-socket Intel Xeon Gold 6148 node:
    Kokkos runs each banded solve as a work item on one core, using 38 of
    the 40 cores.
    """

    name: str
    num_sockets: int
    cores_per_socket: int
    peak_fp64_tflops_per_socket: float
    mem_bw_gbs_per_socket: float
    cores_used: int
    dgbsv_efficiency: float = 0.12

    @property
    def total_cores(self) -> int:
        """All physical cores on the node."""
        return self.num_sockets * self.cores_per_socket

    @property
    def peak_fp64_per_core(self) -> float:
        """Peak FP64 flop/s of one core."""
        return (
            self.peak_fp64_tflops_per_socket * 1e12 / self.cores_per_socket
        )

    @property
    def effective_flops_per_core(self) -> float:
        """Sustained ``dgbsv`` flop rate per core."""
        return self.peak_fp64_per_core * self.dgbsv_efficiency


#: NVIDIA V100-16GB (Volta): 96 KiB configurable shared of the 128 KiB
#: unified L1/shared.
V100 = GpuSpec(
    name="V100",
    peak_fp64_tflops=7.8,
    mem_bw_gbs=990.0,
    l1_shared_per_cu_kib=128,
    l2_mib=6.0,
    num_cus=80,
    warp_size=32,
    max_shared_per_block_kib=96,
    scheduling="flexible",
    sync_latency_us=4.0,
    bw_efficiency=0.80,
)

#: NVIDIA A100-40GB (Ampere): 164 KiB max shared per block of 192 KiB.
A100 = GpuSpec(
    name="A100",
    peak_fp64_tflops=9.7,
    mem_bw_gbs=1555.0,
    l1_shared_per_cu_kib=192,
    l2_mib=40.0,
    num_cus=108,
    warp_size=32,
    max_shared_per_block_kib=164,
    scheduling="flexible",
    sync_latency_us=3.0,
    bw_efficiency=0.85,
    l2_bw_multiplier=1.5,
)

#: AMD MI100-32GB (CDNA): 64 KiB LDS + 16 KiB L1 per CU, 64-wide
#: wavefronts, wave-style dispatch (paper: jumps at multiples of 120).
MI100 = GpuSpec(
    name="MI100",
    peak_fp64_tflops=11.5,
    mem_bw_gbs=1230.0,
    l1_shared_per_cu_kib=80,  # 64 LDS + 16 L1
    l2_mib=8.0,
    num_cus=120,
    warp_size=64,
    max_shared_per_block_kib=64,
    scheduling="wave",
    sync_latency_us=5.0,  # software grid sync: costlier than NVIDIA's
    bw_efficiency=0.45,
    target_blocks_per_cu=1,  # dispatch granularity observed in Fig. 6
)

#: NVIDIA H100-SXM5 (Hopper): 34 TF FP64 vector, HBM3 at 3.35 TB/s,
#: 132 SMs, 256 KiB unified L1/shared per SM (227 KiB usable per block).
#: Grid synchronisation is cheaper than Ampere's (thread-block clusters,
#: faster atomics), and the HBM3 controllers sustain a slightly larger
#: fraction of peak on the solvers' gather-plus-stream patterns.
H100 = GpuSpec(
    name="H100",
    peak_fp64_tflops=34.0,
    mem_bw_gbs=3350.0,
    l1_shared_per_cu_kib=256,
    l2_mib=50.0,
    num_cus=132,
    warp_size=32,
    max_shared_per_block_kib=227,
    scheduling="flexible",
    sync_latency_us=2.5,
    bw_efficiency=0.85,
    l2_bw_multiplier=1.5,
)

#: AMD MI250X, a *single* GCD (the scheduling unit an MPI rank owns on
#: Frontier): 23.95 TF FP64 vector, 1.6 TB/s HBM2e, 110 CUs.  CDNA2 keeps
#: the 64 KiB LDS, 64-wide wavefronts and wave-style dispatch of the
#: MI100, and the same markedly-low achieved bandwidth fraction on
#: batched gather patterns.
MI250X = GpuSpec(
    name="MI250X",
    peak_fp64_tflops=23.95,
    mem_bw_gbs=1638.0,
    l1_shared_per_cu_kib=80,  # 64 LDS + 16 L1, as on MI100
    l2_mib=8.0,
    num_cus=110,
    warp_size=64,
    max_shared_per_block_kib=64,
    scheduling="wave",
    sync_latency_us=5.0,
    bw_efficiency=0.45,
    target_blocks_per_cu=1,
)

#: Intel Data Center GPU Max 1550 ("Ponte Vecchio"), both stacks: 52 TF
#: FP64 vector, 3.2 TB/s HBM2e, 128 Xe-cores with 128 KiB shared local
#: memory each and a very large L2 (2 x 204 MiB).  The SYCL port of the
#: batched solvers (arXiv:2308.08417) compiles the kernels SIMD16 while
#: the hardware schedules 32-wide — ``subgroup_width=16`` bills the extra
#: barrier phase per reduction round.  Software grid sync on Level Zero
#: is costlier than CUDA's cooperative groups, and the early driver stack
#: sustains a lower bandwidth fraction.
PVC = GpuSpec(
    name="PVC",
    peak_fp64_tflops=52.0,
    mem_bw_gbs=3276.8,
    l1_shared_per_cu_kib=192,  # 128 KiB SLM + register-backed L1 slice
    l2_mib=408.0,
    num_cus=128,
    warp_size=32,
    max_shared_per_block_kib=128,
    scheduling="flexible",
    sync_latency_us=6.0,
    bw_efficiency=0.55,
    subgroup_width=16,
)

#: Dual-socket Intel Xeon Gold 6148 (Skylake) node, 38 of 40 cores used.
SKYLAKE_NODE = CpuSpec(
    name="Skylake",
    num_sockets=2,
    cores_per_socket=20,
    peak_fp64_tflops_per_socket=1.0,
    mem_bw_gbs_per_socket=128.0,
    cores_used=38,
)

#: The paper's Table I targets, in the paper's plotting order.  Paper
#: reproduction artifacts (Table I/II, Fig. 9) stay pinned to this set.
TABLE1_GPUS = (V100, A100, MI100)

#: All GPUs the model knows, one vendor generation beyond Table I:
#: paper targets first, then the hardware-zoo extensions.
GPUS = (V100, A100, MI100, H100, MI250X, PVC)
