"""Thread-block scheduling model: batch makespan from per-block times.

Section V observes two qualitatively different batch-size scalings:

* the **MI100** shows "discrete jumps at multiples of 120" — the scheduler
  behaves wave-synchronously, waiting for a compute unit to drain before
  dispatching the next block, so the makespan grows by (roughly) one
  worst-block time whenever the batch crosses a multiple of the CU count;
* the **V100/A100** curves are smooth — blocks are dispatched flexibly to
  whichever CU frees up, so the non-uniform per-system iteration counts of
  an ion/electron mix fill the gaps.

Both policies are implemented here over the *per-system* execution times
that the solver's per-system iteration counts produce.  This is where the
paper's staircase (Fig. 6, red circles) and its absence on the V100 come
from in this reproduction.
"""

from __future__ import annotations

import numpy as np

from .hardware import GpuSpec
from .occupancy import Occupancy

__all__ = ["schedule_blocks", "wave_makespan", "flexible_makespan"]


def wave_makespan(block_times: np.ndarray, slots: int) -> float:
    """Wave-synchronous dispatch: waves of ``slots`` blocks, barrier between.

    The makespan is the sum over waves of each wave's slowest block —
    producing the staircase at multiples of ``slots``.
    """
    if slots < 1:
        raise ValueError("slots must be >= 1")
    t = np.asarray(block_times, dtype=np.float64)
    if t.size == 0:
        return 0.0
    if t[0] == t[-1] and np.all(t == t[0]):
        # Uniform blocks: every wave's slowest block is the common time, so
        # the staircase is exactly one block time per (possibly partial)
        # wave.  Same value as the loop below, O(n) instead of per-wave
        # slicing — the autotuning gym prices 16k-system batches this way.
        return float(t[0]) * -(-t.size // slots)
    total = 0.0
    for start in range(0, t.size, slots):
        total += float(t[start: start + slots].max())
    return total


def flexible_makespan(block_times: np.ndarray, slots: int) -> float:
    """Greedy list scheduling: each freed slot takes the next block.

    Models the flexible dispatch of the NVIDIA GPUs: no barrier between
    blocks, so short (ion) blocks backfill behind long (electron) ones and
    the makespan scales smoothly with the batch size.
    """
    if slots < 1:
        raise ValueError("slots must be >= 1")
    t = np.asarray(block_times, dtype=np.float64)
    if t.size == 0:
        return 0.0
    if t.size <= slots:
        return float(t.max())
    if t[0] == t[-1] and np.all(t == t[0]):
        # Uniform blocks: greedy assignment deals the jobs out evenly (the
        # earliest-finishing slot is always one with the fewest blocks), so
        # the makespan is exactly ceil(n / slots) block times.  Identical
        # to the simulation below but O(n) — this is the case the
        # autotuning gym's fixed-iteration evaluations hit at every batch.
        return float(t[0]) * -(-t.size // slots)
    finish = np.zeros(slots)
    # Seed the slots with the first `slots` blocks, then greedily assign
    # each further block to the earliest-finishing slot.  A heap would be
    # O(n log s); argmin is fine at these sizes and keeps NumPy-only code.
    finish[:] = t[:slots]
    for i in range(slots, t.size):
        j = int(np.argmin(finish))
        finish[j] += t[i]
    return float(finish.max())


def schedule_blocks(
    hw: GpuSpec, occupancy: Occupancy, block_times: np.ndarray
) -> float:
    """Makespan of a batch on ``hw`` under its scheduling policy.

    ``block_times`` holds one execution time per system (one thread block
    per system); ``occupancy`` supplies the concurrent-slot count.
    """
    if hw.scheduling == "wave":
        return wave_makespan(block_times, occupancy.total_slots)
    return flexible_makespan(block_times, occupancy.total_slots)
