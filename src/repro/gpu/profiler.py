"""Profiler-metric collection — the Table II reproduction.

Nsight Compute / rocprof report, for the whole fused solve kernel, the
warp/wavefront utilisation and the L1/L2 hit rates.  This module pulls the
same three metrics out of the performance model for a given
(GPU, format, problem) combination and formats them as the paper's table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .hardware import GpuSpec
from .timing import estimate_iterative_solve

__all__ = ["KernelMetrics", "collect_metrics", "metrics_table"]


@dataclass(frozen=True)
class KernelMetrics:
    """Table II row: one platform/format combination.

    Attributes
    ----------
    platform, fmt:
        Row identity.
    warp_utilization:
        Whole-kernel lane utilisation, percent.
    l1_hit_rate:
        Percent of global accesses served by L1 (None where the tool
        does not report it — the paper's MI100 rows).
    l2_hit_rate:
        Percent of L1 misses served by L2.
    """

    platform: str
    fmt: str
    warp_utilization: float
    l1_hit_rate: float | None
    l2_hit_rate: float


def collect_metrics(
    hw: GpuSpec,
    fmt: str,
    num_rows: int,
    nnz: int,
    iterations: np.ndarray,
    *,
    stored_nnz: int | None = None,
    report_l1: bool = True,
) -> KernelMetrics:
    """Run the model and extract the Table II metrics."""
    est = estimate_iterative_solve(
        hw, fmt, num_rows, nnz, iterations, stored_nnz=stored_nnz
    )
    return KernelMetrics(
        platform=hw.name,
        fmt=fmt.upper(),
        warp_utilization=100.0 * est.warp_utilization,
        l1_hit_rate=100.0 * est.memory.l1_hit_rate if report_l1 else None,
        l2_hit_rate=100.0 * est.memory.l2_hit_rate,
    )


def metrics_table(rows: list[KernelMetrics]) -> str:
    """Format metrics as the paper's Table II layout."""
    lines = [
        f"{'Processor, format':<18} {'warp use %':>11} {'L1 hit %':>9} {'L2 hit %':>9}"
    ]
    for m in rows:
        l1 = f"{m.l1_hit_rate:9.1f}" if m.l1_hit_rate is not None else f"{'-':>9}"
        lines.append(
            f"{m.platform + ', ' + m.fmt:<18} {m.warp_utilization:11.1f} "
            f"{l1} {m.l2_hit_rate:9.1f}"
        )
    return "\n".join(lines)
