"""GPU execution-model simulator.

Substitutes for the paper's physical V100 / A100 / MI100 / Skylake testbed:
a first-principles performance model parameterised by the Table I hardware
catalog.  The numerics run in :mod:`repro.core`; this package turns their
measured per-system iteration counts into modelled wall-clock times,
scheduling behaviour (the MI100 staircase), profiler metrics (Table II),
and CPU-baseline costs.
"""

from .cpu_model import CpuSolveEstimate, estimate_cpu_dgbsv, estimate_cpu_iterative
from .hardware import (
    A100,
    GPUS,
    H100,
    MI100,
    MI250X,
    PVC,
    SKYLAKE_NODE,
    TABLE1_GPUS,
    V100,
    CpuSpec,
    GpuSpec,
)
from .kernel import (
    KernelWork,
    banded_lu_work,
    banded_qr_work,
    dense_lu_work,
    escalation_work,
    iteration_work,
    kernel_launches,
    reduction_phase_count,
    reduction_round_scale,
    reduction_rounds,
    setup_work,
    spmv_work,
    storage_for_solver,
)
from .memory import MemoryEstimate, estimate_memory
from .occupancy import Occupancy, compute_occupancy
from .profiler import KernelMetrics, collect_metrics, metrics_table
from .roofline import (
    RooflinePoint,
    analyze_kernel,
    format_roofline,
    solver_roofline_report,
)
from .scheduler import flexible_makespan, schedule_blocks, wave_makespan
from .trace import BlockTrace, ScheduleTrace, render_gantt, trace_schedule
from .timing import (
    GpuSolveEstimate,
    estimate_dense_lu,
    estimate_direct_qr,
    estimate_iterative_solve,
    estimate_spmv,
)
from .tuning import (
    TuningDecision,
    choose_solver_variant,
    decision_for_config,
    tune_batched_solver,
    tune_for_matrix,
    variant_estimates,
)
from .warp import (
    csr_spmv_utilization,
    ell_spmv_utilization,
    solver_utilization,
    spmv_utilization,
)

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "V100",
    "A100",
    "H100",
    "MI100",
    "MI250X",
    "PVC",
    "SKYLAKE_NODE",
    "GPUS",
    "TABLE1_GPUS",
    "KernelWork",
    "spmv_work",
    "iteration_work",
    "setup_work",
    "banded_lu_work",
    "banded_qr_work",
    "dense_lu_work",
    "escalation_work",
    "storage_for_solver",
    "reduction_phase_count",
    "reduction_round_scale",
    "reduction_rounds",
    "kernel_launches",
    "MemoryEstimate",
    "estimate_memory",
    "Occupancy",
    "compute_occupancy",
    "schedule_blocks",
    "wave_makespan",
    "flexible_makespan",
    "GpuSolveEstimate",
    "estimate_iterative_solve",
    "estimate_spmv",
    "estimate_direct_qr",
    "estimate_dense_lu",
    "TuningDecision",
    "choose_solver_variant",
    "decision_for_config",
    "tune_batched_solver",
    "tune_for_matrix",
    "variant_estimates",
    "CpuSolveEstimate",
    "estimate_cpu_dgbsv",
    "estimate_cpu_iterative",
    "KernelMetrics",
    "collect_metrics",
    "metrics_table",
    "BlockTrace",
    "ScheduleTrace",
    "trace_schedule",
    "render_gantt",
    "RooflinePoint",
    "analyze_kernel",
    "solver_roofline_report",
    "format_roofline",
    "csr_spmv_utilization",
    "ell_spmv_utilization",
    "spmv_utilization",
    "solver_utilization",
]
