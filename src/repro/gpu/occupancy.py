"""Occupancy model: resident thread blocks per compute unit.

One thread block solves one system (Section IV-C).  How many blocks a CU
can host simultaneously is limited by the dynamic shared memory each block
requests — the §IV-D planner deliberately sizes its request so that at
least two blocks stay resident (latency hiding), and this module closes the
loop by computing the residency that a given request actually achieves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .hardware import GpuSpec

__all__ = ["Occupancy", "compute_occupancy"]

#: Hardware cap on resident blocks per CU (simplified, uniform).
MAX_BLOCKS_PER_CU = 32


@dataclass(frozen=True)
class Occupancy:
    """Residency outcome for one kernel on one GPU.

    Attributes
    ----------
    blocks_per_cu:
        Thread blocks resident per compute unit.
    total_slots:
        Concurrent blocks across the whole device.
    limiter:
        What capped residency (``"shared-memory"``, ``"threads"``, or
        ``"block-cap"``).
    """

    blocks_per_cu: int
    total_slots: int
    limiter: str

    def to_dict(self) -> dict:
        """JSON-ready representation (stable keys, plain types)."""
        return {
            "blocks_per_cu": int(self.blocks_per_cu),
            "total_slots": int(self.total_slots),
            "limiter": self.limiter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Occupancy":
        """Inverse of :meth:`to_dict` (exact round-trip)."""
        return cls(
            blocks_per_cu=int(data["blocks_per_cu"]),
            total_slots=int(data["total_slots"]),
            limiter=data["limiter"],
        )


def compute_occupancy(
    hw: GpuSpec,
    shared_bytes_per_block: int,
    threads_per_block: int,
    *,
    max_threads_per_cu: int = 2048,
) -> Occupancy:
    """Resident blocks per CU for a kernel's resource request.

    Parameters
    ----------
    hw:
        Target GPU.
    shared_bytes_per_block:
        Dynamic shared memory requested per block.
    threads_per_block:
        Block size (the batched kernels use one thread per row, rounded up
        to a warp multiple).
    """
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be >= 1")
    if shared_bytes_per_block < 0:
        raise ValueError("shared_bytes_per_block must be >= 0")

    limits = {"block-cap": MAX_BLOCKS_PER_CU}
    if shared_bytes_per_block > 0:
        shared_cap = hw.max_shared_per_block_kib * 1024
        if shared_bytes_per_block > shared_cap:
            raise ValueError(
                f"kernel requests {shared_bytes_per_block} B shared, but "
                f"{hw.name} allows at most {shared_cap} B per block"
            )
        limits["shared-memory"] = (
            hw.max_shared_per_block_kib * 1024 // shared_bytes_per_block
        )
    warp_threads = math.ceil(threads_per_block / hw.warp_size) * hw.warp_size
    limits["threads"] = max_threads_per_cu // warp_threads

    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(1, int(limits[limiter]))
    return Occupancy(
        blocks_per_cu=blocks,
        total_slots=blocks * hw.num_cus,
        limiter=limiter,
    )
