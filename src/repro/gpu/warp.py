"""Warp/wavefront utilisation model (Section IV-E, Fig. 5, Table II).

The paper's CSR SpMV assigns one warp per row: with only 9 non-zeros per
row, most lanes idle during the load and the tree reduction ("a warp of 32
threads has only 5 threads active in the first reduction stage").  The ELL
SpMV assigns one thread per row, so utilisation is set by how evenly the
rows fill whole warps.  Both effects are purely geometric and are computed
here, then blended with the (fully-coalesced) dense phases of the solver to
give the whole-kernel utilisation that Nsight/rocprof report.
"""

from __future__ import annotations

import math

from .hardware import GpuSpec

__all__ = [
    "csr_spmv_utilization",
    "ell_spmv_utilization",
    "spmv_utilization",
    "solver_utilization",
]


def csr_spmv_utilization(nnz_per_row: int, warp_size: int) -> float:
    """Lane utilisation of the warp-per-row CSR SpMV.

    The kernel has two phases: the gather-multiply phase keeps
    ``min(nnz_per_row, warp)`` lanes busy; the tree reduction halves the
    active lanes every stage starting from ``ceil(nnz/2)``.  Utilisation is
    the active-lane fraction averaged over all phases (each phase ~1 step).
    """
    if nnz_per_row < 1 or warp_size < 1:
        raise ValueError("nnz_per_row and warp_size must be >= 1")
    active = [min(nnz_per_row, warp_size)]  # load/multiply phase
    lanes = math.ceil(min(nnz_per_row, warp_size) / 2)
    while lanes >= 1:
        active.append(lanes)
        if lanes == 1:
            break
        lanes = math.ceil(lanes / 2)
    return sum(active) / (len(active) * warp_size)


def ell_spmv_utilization(num_rows: int, warp_size: int) -> float:
    """Lane utilisation of the thread-per-row ELL SpMV.

    All warps are fully busy except the last partial one; utilisation is
    ``num_rows / (warps * warp_size)``.
    """
    if num_rows < 1 or warp_size < 1:
        raise ValueError("num_rows and warp_size must be >= 1")
    warps = math.ceil(num_rows / warp_size)
    return num_rows / (warps * warp_size)


def spmv_utilization(fmt: str, num_rows: int, nnz_per_row: int, hw: GpuSpec) -> float:
    """SpMV lane utilisation for a format on a GPU.

    DIA shares ELL's thread-per-row geometry (each thread walks its row's
    stored diagonals), so its lane utilisation is identical; the formats
    differ in the traffic model, not the warp geometry.
    """
    if fmt == "csr":
        return csr_spmv_utilization(nnz_per_row, hw.warp_size)
    if fmt in ("ell", "dia", "dense"):
        return ell_spmv_utilization(num_rows, hw.warp_size)
    raise ValueError(f"unknown format {fmt!r}")


def solver_utilization(
    fmt: str,
    num_rows: int,
    nnz_per_row: int,
    hw: GpuSpec,
    *,
    spmv_time_fraction: float = 0.6,
) -> float:
    """Whole-kernel warp utilisation (the Table II metric).

    The fused solver interleaves SpMVs with dense vector operations that
    run at the thread-per-row utilisation; the whole-kernel number is the
    time-weighted blend.  ``spmv_time_fraction`` is the share of kernel
    time spent in SpMVs ("SpMVs account for a large part of the batched
    solver execution time", §IV-D) — 0.6 reproduces the measured Table II
    mix.
    """
    if not 0.0 <= spmv_time_fraction <= 1.0:
        raise ValueError("spmv_time_fraction must be in [0, 1]")
    u_spmv = spmv_utilization(fmt, num_rows, nnz_per_row, hw)
    u_dense = ell_spmv_utilization(num_rows, hw.warp_size)
    return spmv_time_fraction * u_spmv + (1.0 - spmv_time_fraction) * u_dense
