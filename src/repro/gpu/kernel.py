"""Operation-count models of the batched kernels.

Every timing estimate starts from an exact account of the work one *system*
(one thread block) performs: floating-point operations and the bytes it
moves per memory stream.  These counts are derived from the algorithms as
implemented in :mod:`repro.core` — they are bookkeeping, not calibration.

Streams are kept separate because they hit different memory levels:

* ``matrix_bytes`` — per-system non-zero values (read once per SpMV);
* ``index_bytes`` — the *shared* sparsity metadata (read per SpMV but
  identical for every system, so highly cacheable);
* ``vector_bytes`` — traffic of solver vectors that the §IV-D planner
  could not fit into shared memory (shared-resident vectors cost nothing
  here);
* ``rhs_bytes`` — right-hand-side reads (global, read-only, cacheable).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.solvers.schedule import OpSchedule, solver_schedule
from ..core.workspace import StorageConfig, plan_storage, solver_vector_specs

__all__ = [
    "KernelWork",
    "spmv_work",
    "iteration_work",
    "setup_work",
    "banded_lu_work",
    "banded_qr_work",
    "escalation_work",
    "kernel_launches",
    "reduction_phase_count",
    "reduction_round_scale",
    "reduction_rounds",
    "storage_for_solver",
]

VALUE_BYTES = 8
INDEX_BYTES = 4


@dataclass(frozen=True)
class KernelWork:
    """Per-system work of one kernel invocation (or one iteration).

    Attributes
    ----------
    flops:
        Floating-point operations.
    matrix_bytes:
        Per-system matrix-value traffic.
    index_bytes:
        Shared sparsity-metadata traffic (same data for all systems).
    vector_bytes:
        Global-memory solver-vector traffic (reads + writes).
    rhs_bytes:
        Right-hand-side / solution global traffic.
    """

    flops: float
    matrix_bytes: float = 0.0
    index_bytes: float = 0.0
    vector_bytes: float = 0.0
    rhs_bytes: float = 0.0

    def __add__(self, other: "KernelWork") -> "KernelWork":
        return KernelWork(
            flops=self.flops + other.flops,
            matrix_bytes=self.matrix_bytes + other.matrix_bytes,
            index_bytes=self.index_bytes + other.index_bytes,
            vector_bytes=self.vector_bytes + other.vector_bytes,
            rhs_bytes=self.rhs_bytes + other.rhs_bytes,
        )

    def scaled(self, factor: float) -> "KernelWork":
        """Work repeated ``factor`` times."""
        return KernelWork(
            flops=self.flops * factor,
            matrix_bytes=self.matrix_bytes * factor,
            index_bytes=self.index_bytes * factor,
            vector_bytes=self.vector_bytes * factor,
            rhs_bytes=self.rhs_bytes * factor,
        )

    @property
    def total_bytes(self) -> float:
        """All streams combined (before cache filtering)."""
        return (
            self.matrix_bytes + self.index_bytes + self.vector_bytes + self.rhs_bytes
        )


@lru_cache(maxsize=4096)
def spmv_work(
    num_rows: int,
    nnz: int,
    fmt: str,
    *,
    stored_nnz: int | None = None,
    value_bytes: int = VALUE_BYTES,
) -> KernelWork:
    """One batched SpMV, per system.

    ``stored_nnz`` covers ELL/DIA padding (stored entries can exceed the
    true non-zero count); defaults to ``nnz``.  The DIA kernel reads no
    column indices at all — its index metadata is one offset per stored
    diagonal (``stored / num_rows`` of them) — but pays the padded-fringe
    flops and value traffic like ELL pays its padding.  ``value_bytes``
    is the size of one stored value (8 for fp64, 4 for fp32): value and
    vector traffic scale with it, index metadata does not.
    """
    stored = nnz if stored_nnz is None else stored_nnz
    if fmt == "csr":
        index_bytes = (stored + num_rows + 1) * INDEX_BYTES
    elif fmt == "ell":
        index_bytes = stored * INDEX_BYTES
    elif fmt == "dia":
        num_diags = max(stored // max(num_rows, 1), 1)
        index_bytes = num_diags * INDEX_BYTES
    elif fmt == "dense":
        stored = num_rows * num_rows
        index_bytes = 0
    else:
        raise ValueError(f"unknown format {fmt!r}")
    return KernelWork(
        flops=2.0 * stored,
        matrix_bytes=stored * value_bytes,
        index_bytes=index_bytes,
        # Input vector is gathered (cache-friendly) and output written once;
        # both usually live in shared memory for the fused solver — the
        # caller zeroes vector_bytes when that is the case.
        vector_bytes=2.0 * num_rows * value_bytes,
    )


def reduction_rounds(schedule: OpSchedule, num_iterations: float) -> float:
    """Device-wide reduction rounds of one fused solve, from the schedule.

    A round is one grid-wide synchronization + scalar broadcast: a bare
    ``batch_dot`` or ``batch_norm2`` costs one, a ``fused_dots`` call
    costs one *regardless of how many dots it carries* — exactly what the
    schedules' ``syncs`` channel declares and the conformance tests
    measure.  ``num_iterations`` is the kernel's trip count — the batch
    *maximum* per-system iteration count, since the loop of the fused
    kernel runs until the slowest system converges (frozen systems ride
    along in masked no-op form but the barrier still costs every block).
    """
    return schedule.setup_syncs + schedule.amortized("syncs") * num_iterations


def reduction_phase_count(num_lanes: int, width: int) -> int:
    """Barrier-separated phases of one block-wide reduction at SIMD ``width``.

    Each phase reduces ``width`` partial sums per SIMD group via shuffles
    (barrier-free), then the group leaders write to shared local memory
    and a barrier separates the next phase: ``num_lanes`` lanes need
    ``ceil(log_width(num_lanes))`` such phases.  A narrower compiled
    SIMD width therefore means *more* barrier phases for the same block
    — the Ponte Vecchio SIMD16-vs-SIMD32 effect (arXiv:2308.08417).
    """
    if num_lanes < 1 or width < 2:
        raise ValueError("need num_lanes >= 1 and width >= 2")
    phases = 0
    remaining = num_lanes
    while remaining > 1:
        remaining = -(-remaining // width)
        phases += 1
    return max(phases, 1)


def reduction_round_scale(hw, num_lanes: int) -> float:
    """Cost multiplier on one reduction round for ``hw``'s compiled width.

    ``sync_latency_us`` is calibrated for kernels that reduce at the
    native warp width; a target whose kernels compile to a *narrower*
    ``subgroup_width`` (PVC's SIMD16) pays proportionally more
    barrier-separated phases per round.  Identical widths give exactly
    ``1.0``, so CUDA/HIP targets' bills are untouched.
    """
    if hw.subgroup_width == hw.warp_size:
        return 1.0
    return (
        reduction_phase_count(num_lanes, hw.subgroup_width)
        / reduction_phase_count(num_lanes, hw.warp_size)
    )


def kernel_launches(
    schedule: OpSchedule, num_iterations: float, *, fused: bool = True
) -> float:
    """Host-side kernel launches of one batched solve.

    ``fused=True`` is the paper's production kernel: the whole solve —
    setup, every iteration, convergence checks — is ONE launch.  With
    ``fused=False`` every fused kernel group (the maximal run of BLAS-1 /
    SpMV work between two reduction rounds, declared as the schedules'
    ``fused_groups`` channel) becomes its own launch, which is how a
    library-composed (cuBLAS/cuSPARSE-call-per-op) implementation runs
    and why it loses at small batch sizes.
    """
    if fused:
        return 1.0
    return (
        schedule.setup_fused_groups
        + schedule.amortized("fused_groups") * num_iterations
    )


@lru_cache(maxsize=4096)
def storage_for_solver(
    solver: str,
    num_rows: int,
    shared_budget_bytes: int,
    *,
    gmres_restart: int = 30,
    value_bytes: int = VALUE_BYTES,
) -> StorageConfig:
    """Shared-memory placement for a solver's auxiliary vectors (§IV-D).

    ``gmres_restart`` sizes the GMRES Krylov basis (``m + 1`` SpMV-operand
    vectors); it is ignored by the fixed-footprint solvers.  fp32 vectors
    (``value_bytes=4``) are half the size, so the same shared-memory
    budget holds twice as many — the placement genuinely changes with the
    precision policy.
    """
    return plan_storage(
        solver_vector_specs(solver, gmres_restart=gmres_restart),
        num_rows, shared_budget_bytes,
        value_bytes=value_bytes,
    )


@lru_cache(maxsize=4096)
def iteration_work(
    schedule: OpSchedule,
    num_rows: int,
    nnz: int,
    fmt: str,
    storage: StorageConfig,
    *,
    stored_nnz: int | None = None,
    preconditioner: str = "jacobi",
    value_bytes: int = VALUE_BYTES,
) -> KernelWork:
    """One solver iteration, per system, derived from its declared schedule.

    Flops: each SpMV costs its format-specific count, dots and norms 2n,
    axpy-like updates 2n, Jacobi applies n; cyclic extras (GMRES restart
    boundaries) are amortised over the cycle length.  Global-vector
    traffic is charged only for the vectors the §IV-D placement spilled —
    each pays its *declared* per-iteration touches in HBM passes, not a
    flat per-solver constant.

    Memoized: schedules, placements and :class:`KernelWork` are all frozen
    value objects, and the autotuning gym re-prices the same
    (solver, format, precision) spec thousands of times — rebuilding the
    work record on every :func:`~repro.gpu.timing.estimate_iterative_solve`
    call was a measured hot path.
    """
    n = num_rows
    spmv = spmv_work(n, nnz, fmt, stored_nnz=stored_nnz, value_bytes=value_bytes)

    spmvs = schedule.amortized("spmvs")
    precond_applies = schedule.amortized("precond_applies")
    dots = schedule.amortized("dots")
    norms = schedule.amortized("norms")
    axpys = schedule.amortized("axpys")

    precond_flops = 1.0 * n if preconditioner == "jacobi" else 0.0
    vec_flops = (
        (dots + norms) * 2.0 * n
        + axpys * 2.0 * n
        + precond_applies * precond_flops
    )

    vector_traffic = (
        schedule.spilled_touches(storage.global_vectors) * n * value_bytes
    )

    return KernelWork(
        flops=spmvs * spmv.flops + vec_flops,
        matrix_bytes=spmvs * spmv.matrix_bytes,
        index_bytes=spmvs * spmv.index_bytes,
        vector_bytes=vector_traffic,
        rhs_bytes=0.0,
    )


@lru_cache(maxsize=4096)
def setup_work(
    schedule: OpSchedule,
    num_rows: int,
    nnz: int,
    fmt: str,
    *,
    stored_nnz: int | None = None,
    value_bytes: int = VALUE_BYTES,
) -> KernelWork:
    """Per-system one-time work of a solver's priming phase.

    The declared ``setup_*`` counts (initial residual, criterion norms,
    first Krylov quantities) plus the read-b / write-x RHS traffic.
    """
    n = num_rows
    spmv = spmv_work(n, nnz, fmt, stored_nnz=stored_nnz, value_bytes=value_bytes)
    vec_flops = (
        (schedule.setup_dots + schedule.setup_norms + schedule.setup_axpys)
        * 2.0 * n
        + schedule.setup_precond_applies * n
    )
    return KernelWork(
        flops=schedule.setup_spmvs * spmv.flops + vec_flops,
        matrix_bytes=schedule.setup_spmvs * spmv.matrix_bytes,
        index_bytes=schedule.setup_spmvs * spmv.index_bytes,
        vector_bytes=0.0,
        rhs_bytes=2.0 * num_rows * value_bytes,  # read b, write x
    )


def escalation_work(
    num_rows: int,
    nnz: int,
    fmt: str,
    rungs,
    *,
    stored_nnz: int | None = None,
    shared_budget_bytes: int = 0,
    preconditioner: str = "jacobi",
    value_bytes: int = VALUE_BYTES,
    gmres_restart: int = 30,
    kl: int | None = None,
    ku: int | None = None,
) -> KernelWork:
    """Aggregate re-solve work of an escalation ladder, *whole batch*.

    ``rungs`` is the
    :meth:`~repro.core.solvers.escalation.EscalationReport.rung_billing`
    output — ``(solver_name, total_iterations, num_systems)`` per attempted
    rung.  Each iterative rung is billed through the same
    :class:`~repro.core.solvers.schedule.OpSchedule` machinery as a primary
    solve: one :func:`setup_work` per attempted system plus
    :func:`iteration_work` per recorded iteration.  ``"refinement"`` bills
    at the BiCGSTAB schedule (its inner sweeps) and ``"direct"`` /
    ``"banded-lu"`` at :func:`banded_lu_work` per system with bandwidths
    ``kl`` / ``ku`` (default ``isqrt(num_rows)``, the paper's ~n^(1/2)
    collision-stencil band).

    Unlike the per-system counters above this returns **batch totals** —
    escalation sub-batches differ per rung, so per-system numbers would
    average over different denominators.  ``shared_budget_bytes`` defaults
    to 0 (every auxiliary vector spilled to HBM), a conservative ceiling;
    pass the hardware's ``shared_budget_per_block()`` to reproduce the
    fused-kernel placement.
    """
    band = int(max(1, round(num_rows ** 0.5)))
    kl = band if kl is None else kl
    ku = band if ku is None else ku
    total = KernelWork(flops=0.0)
    for solver_name, total_iterations, num_systems in rungs:
        if num_systems <= 0:
            continue
        if solver_name in ("direct", "banded-lu"):
            total = total + banded_lu_work(num_rows, kl, ku).scaled(num_systems)
            continue
        schedule_name = "bicgstab" if solver_name == "refinement" else solver_name
        schedule = solver_schedule(schedule_name, gmres_restart=gmres_restart)
        storage = storage_for_solver(
            schedule_name, num_rows, shared_budget_bytes,
            gmres_restart=gmres_restart, value_bytes=value_bytes,
        )
        per_iter = iteration_work(
            schedule, num_rows, nnz, fmt, storage,
            stored_nnz=stored_nnz, preconditioner=preconditioner,
            value_bytes=value_bytes,
        )
        setup = setup_work(
            schedule, num_rows, nnz, fmt,
            stored_nnz=stored_nnz, value_bytes=value_bytes,
        )
        total = total + setup.scaled(num_systems) + per_iter.scaled(total_iterations)
    return total


def banded_lu_work(num_rows: int, kl: int, ku: int) -> KernelWork:
    """LAPACK ``dgbsv``-equivalent factor+solve flop count, per system.

    Standard counts: factorisation ``~2 n kl (kl + ku + 1)`` (partial
    pivoting fill included), forward/backward solve ``~2 n (2 kl + ku)``.
    """
    n = num_rows
    factor = 2.0 * n * kl * (kl + ku + 1)
    solve = 2.0 * n * (2 * kl + ku)
    bytes_touched = n * (2 * kl + ku + 1) * VALUE_BYTES * 3.0
    return KernelWork(
        flops=factor + solve,
        matrix_bytes=bytes_touched,
        rhs_bytes=2.0 * n * VALUE_BYTES,
    )


def dense_lu_work(num_rows: int) -> KernelWork:
    """Batched dense LU factor+solve flop count, per system.

    The classical ``(2/3) n^3`` factorisation plus ``2 n^2`` triangular
    solves — the cubic cost that rules batched-dense approaches out for
    the n ~ 1000 collision systems (Section II).
    """
    n = num_rows
    factor = (2.0 / 3.0) * n**3
    solve = 2.0 * n**2
    bytes_touched = n * n * VALUE_BYTES * 3.0
    return KernelWork(
        flops=factor + solve,
        matrix_bytes=bytes_touched,
        rhs_bytes=2.0 * n * VALUE_BYTES,
    )


def banded_qr_work(num_rows: int, kl: int, ku: int) -> KernelWork:
    """Batched banded Givens QR factor+solve flop count, per system.

    ``n * kl`` rotations, each touching two rows of ``kl + ku + 1``
    entries (6 flops per pair), plus the banded back substitution.
    """
    n = num_rows
    rotations = n * kl
    factor = rotations * 6.0 * (kl + ku + 1)
    solve = 2.0 * n * (kl + ku)
    bytes_touched = n * (2 * kl + ku + 1) * VALUE_BYTES * 4.0
    return KernelWork(
        flops=factor + solve,
        matrix_bytes=bytes_touched,
        rhs_bytes=2.0 * n * VALUE_BYTES,
    )
