"""Automatic solver configuration — the paper's contribution #3.

"We tune the batched BiCGSTAB solver for the matrices from the XGC and
also provide an automatic tuning strategy depending on the size of the
matrix."  This module is that strategy: given the problem dimensions and
the target GPU, it decides

* the **matrix format** — DIA when the pattern is a small set of constant
  diagonals (the stencil case: no index loads at all, the smallest cached
  working set); else ELL when the rows are (near-)uniform so padding is
  cheap and the thread-per-row kernel applies; CSR otherwise
  (Section IV-A/IV-E);
* the **thread-block size** — proportional to the system size ("each
  thread block contains a number of threads proportional to the size of an
  individual linear system"), rounded to warp granularity, capped by the
  hardware thread limit, with multiple rows per thread when a system
  exceeds the cap;
* the **shared-memory request** — the §IV-D placement for the chosen
  residency target, degraded gracefully when the vectors outgrow the
  budget;
* whether the **fused single-kernel** path applies — for small systems
  where launch overhead and inter-kernel traffic dominate; large systems
  fall back to component kernels ("these considerations are not important
  for larger problem sizes").

Every decision carries its rationale so an application developer can audit
what the heuristic did — the flexibility/transparency balance the Ginkgo
design aims for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.workspace import StorageConfig, plan_storage, solver_vector_specs
from ..utils.validation import check_positive
from .hardware import GpuSpec
from .occupancy import Occupancy, compute_occupancy

__all__ = [
    "TuningDecision",
    "choose_solver_variant",
    "decision_for_config",
    "tune_batched_solver",
    "tune_for_matrix",
    "variant_estimates",
]

#: Hardware thread cap per block (uniform across the modelled GPUs).
MAX_THREADS_PER_BLOCK = 1024

#: Padding overhead above which ELL stops paying for itself.
ELL_PADDING_LIMIT = 0.5

#: Stored diagonals up to which the gather-free DIA kernel is preferred:
#: beyond one warp's worth of diagonals the per-thread sweep stops being a
#: short unrolled loop and the fringe padding typically grows too.
DIA_DIAG_LIMIT = 32

#: Fringe-padding overhead above which DIA stops paying for itself
#: (same trade as ELL: padded values are streamed and multiplied).
DIA_PADDING_LIMIT = 0.5

#: Systems below this row count are "small": the fused one-kernel design
#: (all iterations inside one launch) is the right call.
FUSED_ROW_LIMIT = 8192

#: Classic solvers with a pipelined (fused-reduction) sibling.
PIPELINED_VARIANTS = {"cg": "pipelined_cg", "bicgstab": "pipelined_bicgstab"}

#: Representative per-system iteration count used when the variant choice
#: has no measured counts to go on (the paper's n = 992 stencil converges
#: in a few tens of BiCGSTAB iterations at the production tolerance).
VARIANT_MODEL_ITERATIONS = 32


@dataclass(frozen=True)
class TuningDecision:
    """Outcome of the automatic configuration.

    Hashable value object: ``rationale`` (free-form provenance text) is
    excluded from equality and hashing, so two decisions reached by
    different routes — hand rules vs a searched policy — compare equal
    exactly when they configure the same kernel.  ``to_dict`` /
    ``from_dict`` round-trip deterministically for policy files and
    trajectory logs.

    Attributes
    ----------
    fmt:
        Chosen matrix format (``"dia"``, ``"ell"`` or ``"csr"``).
    threads_per_block:
        Block size (warp multiple).
    rows_per_thread:
        How many rows each thread sweeps (1 unless the system is larger
        than the thread cap).
    storage:
        Shared-memory placement for the solver's vectors.
    occupancy:
        Residency the request achieves on the target GPU.
    fused_kernel:
        Whether the single-kernel (whole solve in one launch) path is
        selected.
    rationale:
        Human-readable reasons, keyed by decision (not compared/hashed).
    solver_variant:
        The solver actually configured: the requested solver, or its
        pipelined sibling when the batch size was supplied and the
        sync-aware cost model priced the pipelined variant cheaper
        (``None`` when no batch size was given, i.e. no variant choice
        was made).
    backend:
        Array backend the decision executes on (``"numpy"`` default,
        ``"jax"``).  Provenance only — the modelled GPU cost is
        backend-independent, so the searched result is unchanged for the
        default backend — but recorded so ``best_configs.json`` says
        which execution path a decision was taken for.
    """

    fmt: str
    threads_per_block: int
    rows_per_thread: int
    storage: StorageConfig
    occupancy: Occupancy
    fused_kernel: bool
    rationale: dict = field(default_factory=dict, compare=False)
    solver_variant: str | None = None
    backend: str = "numpy"

    def to_dict(self) -> dict:
        """JSON-ready representation with a stable schema."""
        return {
            "fmt": self.fmt,
            "threads_per_block": int(self.threads_per_block),
            "rows_per_thread": int(self.rows_per_thread),
            "storage": self.storage.to_dict(),
            "occupancy": self.occupancy.to_dict(),
            "fused_kernel": bool(self.fused_kernel),
            "rationale": dict(self.rationale),
            "solver_variant": self.solver_variant,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuningDecision":
        """Inverse of :meth:`to_dict`: round-trips to an equal decision.

        ``backend`` defaults to ``"numpy"`` for records written before
        the field existed.
        """
        return cls(
            fmt=data["fmt"],
            threads_per_block=int(data["threads_per_block"]),
            rows_per_thread=int(data["rows_per_thread"]),
            storage=StorageConfig.from_dict(data["storage"]),
            occupancy=Occupancy.from_dict(data["occupancy"]),
            fused_kernel=bool(data["fused_kernel"]),
            rationale=dict(data.get("rationale", {})),
            solver_variant=data.get("solver_variant"),
            backend=data.get("backend", "numpy"),
        )


def _choose_format(
    nnz_row_min: int,
    nnz_row_max: int,
    warp_size: int,
    padding_fraction: float,
    num_diags: int | None = None,
    dia_padding_fraction: float | None = None,
) -> tuple[str, str]:
    """DIA for compact diagonal patterns, else ELL when padding is cheap,
    CSR otherwise.

    ``padding_fraction`` is the fraction of stored ELL entries that would
    be padding: the exact value when the caller knows the row-length
    distribution, the worst-case ``1 - min/max`` bound otherwise.
    ``num_diags``/``dia_padding_fraction`` describe the diagonal structure
    when the caller inspected the pattern (``tune_for_matrix`` does); with
    no diagonal information the choice falls back to the ELL/CSR policy.
    """
    if (
        num_diags is not None
        and num_diags <= DIA_DIAG_LIMIT
        and (dia_padding_fraction or 0.0) <= DIA_PADDING_LIMIT
    ):
        return "dia", (
            f"pattern is {num_diags} constant diagonals "
            f"({100 * (dia_padding_fraction or 0.0):.0f}% fringe padding): "
            "gather-free DIA reads no column indices — index metadata "
            f"shrinks to {num_diags} offsets and the cached working set "
            "is the smallest of the three formats"
        )
    if padding_fraction <= ELL_PADDING_LIMIT:
        return "ell", (
            f"rows are near-uniform ({nnz_row_min}-{nnz_row_max} nnz, "
            f"{100 * padding_fraction:.0f}% padding): thread-per-row ELL "
            "kernel fills warps and reads coalesced"
        )
    if nnz_row_max >= warp_size // 2:
        return "csr", (
            f"irregular rows ({nnz_row_min}-{nnz_row_max} nnz) with long "
            "rows: warp-per-row CSR amortises the reduction"
        )
    return "csr", (
        f"irregular rows ({nnz_row_min}-{nnz_row_max} nnz): ELL padding "
        f"{100 * padding_fraction:.0f}% exceeds the "
        f"{100 * ELL_PADDING_LIMIT:.0f}% limit"
    )


def variant_estimates(
    hw: GpuSpec,
    fmt: str,
    num_rows: int,
    nnz: int,
    iterations_by_solver,
    *,
    num_batch: int | None = None,
    stored_nnz: int | None = None,
    preconditioner: str = "jacobi",
    gmres_restart: int = 30,
    value_bytes: int = 8,
    shared_budget_bytes: int | None = None,
):
    """Modeled cost of *each* candidate solver, not just the winner.

    ``iterations_by_solver`` maps solver names to their per-system
    iteration counts — an array, or a scalar expanded to ``num_batch``
    systems.  Returns ``{solver: GpuSolveEstimate}`` so every consumer of
    the classic-vs-pipelined trade (:func:`choose_solver_variant`, the
    fig6 crossover inset, the autotuning gym's evaluation harness) reads
    the *same* modeled numbers instead of re-deriving them.
    """
    import numpy as np

    from .timing import estimate_iterative_solve

    out = {}
    for name, iters in iterations_by_solver.items():
        arr = np.asarray(iters, dtype=np.float64)
        if arr.ndim == 0:
            if num_batch is None:
                raise ValueError(
                    "scalar iteration counts need num_batch to expand to"
                )
            check_positive(num_batch, "num_batch")
            arr = np.full(num_batch, float(arr))
        out[name] = estimate_iterative_solve(
            hw, fmt, num_rows, nnz, arr,
            stored_nnz=stored_nnz, solver=name,
            preconditioner=preconditioner, gmres_restart=gmres_restart,
            value_bytes=value_bytes, shared_budget_bytes=shared_budget_bytes,
        )
    return out


def choose_solver_variant(
    hw: GpuSpec,
    fmt: str,
    num_rows: int,
    nnz: int,
    num_batch: int,
    *,
    solver: str = "bicgstab",
    iterations: int = VARIANT_MODEL_ITERATIONS,
    stored_nnz: int | None = None,
    preconditioner: str = "jacobi",
    value_bytes: int = 8,
) -> tuple[str, str]:
    """Classic or pipelined: price both through the sync-aware cost model.

    The trade is batch-size dependent.  The device-wide reduction rounds
    cost ``sync_latency_us`` each *per kernel trip*, independent of the
    batch size — at small batches they dominate and the pipelined
    variants' fewer rounds win.  The pipelined extras (residual
    replacement SpMVs for pipelined CG, the heavier recurrence updates)
    scale per system, so a large enough batch amortises the sync savings
    away and classic wins back.  Returns ``(chosen_solver, rationale)``;
    solvers without a pipelined sibling are returned unchanged.  The
    underlying per-variant estimates come from :func:`variant_estimates`.
    """
    check_positive(num_batch, "num_batch")
    pipelined = PIPELINED_VARIANTS.get(solver)
    if pipelined is None:
        return solver, (
            f"{solver} has no pipelined variant: keeping the requested solver"
        )
    est = variant_estimates(
        hw, fmt, num_rows, nnz,
        {name: float(iterations) for name in (solver, pipelined)},
        num_batch=num_batch, stored_nnz=stored_nnz,
        preconditioner=preconditioner, value_bytes=value_bytes,
    )
    t_classic = est[solver].total_time_s
    t_pipe = est[pipelined].total_time_s
    saved_sync_us = (est[solver].sync_s - est[pipelined].sync_s) * 1e6
    if t_pipe < t_classic:
        return pipelined, (
            f"{pipelined} modelled at {t_pipe * 1e6:.0f} us vs "
            f"{t_classic * 1e6:.0f} us for {solver} on {num_batch} systems: "
            f"{saved_sync_us:.0f} us of reduction-round latency saved "
            "outweighs the pipelined per-system extras at this batch size"
        )
    return solver, (
        f"{solver} modelled at {t_classic * 1e6:.0f} us vs "
        f"{t_pipe * 1e6:.0f} us for {pipelined} on {num_batch} systems: "
        "the batch is large enough that the per-system pipelined extras "
        f"outweigh the {saved_sync_us:.0f} us of reduction-round savings"
    )


def _thread_plan(hw: GpuSpec, num_rows: int) -> tuple[int, int, str]:
    """Block size and rows-per-thread for one system (warp-granular)."""
    rows_per_thread = max(1, math.ceil(num_rows / MAX_THREADS_PER_BLOCK))
    lanes = math.ceil(num_rows / rows_per_thread)
    threads = min(
        math.ceil(lanes / hw.warp_size) * hw.warp_size, MAX_THREADS_PER_BLOCK
    )
    why = (
        f"{threads} threads ({threads // hw.warp_size} warps) for "
        f"{num_rows} rows, {rows_per_thread} row(s) per thread"
    )
    return threads, rows_per_thread, why


def tune_batched_solver(
    hw: GpuSpec,
    num_rows: int,
    nnz_row_min: int,
    nnz_row_max: int,
    *,
    solver: str = "bicgstab",
    gmres_restart: int = 30,
    value_bytes: int = 8,
    padding_fraction: float | None = None,
    num_diags: int | None = None,
    dia_padding_fraction: float | None = None,
    num_batch: int | None = None,
) -> TuningDecision:
    """Derive the full kernel configuration for a batched solve.

    Parameters
    ----------
    hw:
        Target GPU.
    num_rows:
        Rows of each system in the batch.
    nnz_row_min, nnz_row_max:
        Row-length range of the shared sparsity pattern.
    solver:
        Solver whose auxiliary vectors the shared-memory plan covers.
    gmres_restart:
        Krylov subspace dimension when ``solver="gmres"`` — it sizes the
        ``m + 1`` basis vectors the placement must cover.  Ignored by the
        fixed-footprint solvers.
    padding_fraction:
        Exact ELL padding fraction when the row-length distribution is
        known (``tune_for_matrix`` supplies it); defaults to the
        worst-case ``1 - min/max`` bound.
    num_diags, dia_padding_fraction:
        Diagonal structure of the pattern, when known: the number of
        constant diagonals carrying entries and the fringe-padding
        fraction of the DIA bands.  Enables the gather-free DIA choice;
        omitted (the default), the ELL/CSR policy applies unchanged.
    num_batch:
        Number of systems in the batch.  When supplied (and the solver
        has a pipelined sibling), :func:`choose_solver_variant` prices
        classic vs pipelined through the sync-aware cost model and the
        decision's shared-memory plan covers the *chosen* variant;
        omitted, no variant choice is made (``solver_variant=None``).
    """
    check_positive(num_rows, "num_rows")
    check_positive(nnz_row_min, "nnz_row_min")
    if nnz_row_max < nnz_row_min:
        raise ValueError("nnz_row_max must be >= nnz_row_min")
    if padding_fraction is None:
        padding_fraction = 1.0 - nnz_row_min / nnz_row_max
    if not 0.0 <= padding_fraction < 1.0:
        raise ValueError("padding_fraction must be in [0, 1)")
    if dia_padding_fraction is not None and not 0.0 <= dia_padding_fraction < 1.0:
        raise ValueError("dia_padding_fraction must be in [0, 1)")

    rationale: dict[str, str] = {}
    fmt, why = _choose_format(
        nnz_row_min, nnz_row_max, hw.warp_size, padding_fraction,
        num_diags, dia_padding_fraction,
    )
    rationale["format"] = why

    # Classic vs pipelined: only decidable when the batch size is known —
    # the sync savings are per kernel trip, the pipelined extras per
    # system, so the break-even point is a batch size.
    solver_variant: str | None = None
    plan_solver = solver
    if num_batch is not None:
        stored = nnz_row_max * num_rows
        nnz = max(int(round((1.0 - padding_fraction) * stored)), num_rows)
        solver_variant, why = choose_solver_variant(
            hw, fmt, num_rows, nnz, num_batch, solver=solver,
            stored_nnz=stored if fmt in ("ell", "dia") else None,
            value_bytes=value_bytes,
        )
        rationale["solver_variant"] = why
        plan_solver = solver_variant

    # Threads proportional to the system size, warp-granular, capped.
    threads, rows_per_thread, why = _thread_plan(hw, num_rows)
    rationale["threads"] = why

    # Shared memory: the §IV-D placement under the residency budget; if
    # even the SpMV vectors don't fit, fall back to a single vector and
    # finally to none (the kernel then streams through global memory).
    budget = hw.shared_budget_per_block()
    storage = plan_storage(
        solver_vector_specs(plan_solver, gmres_restart=gmres_restart),
        num_rows, budget, value_bytes=value_bytes,
    )
    if storage.num_shared == 0 and budget > 0:
        rationale["shared"] = (
            f"vectors of {num_rows * value_bytes} B exceed the "
            f"{budget} B budget: all vectors spill to global memory"
        )
    else:
        rationale["shared"] = (
            f"{storage.num_shared}/{storage.num_vectors} vectors in "
            f"{storage.shared_bytes_used} B of shared memory "
            f"(budget {budget} B, SpMV vectors first)"
        )
    if fmt == "dia" and num_diags is not None:
        # The gather-free kernel's read-only working set has no per-entry
        # index array; quantify what that frees for the cache model.
        ell_index_bytes = num_diags * num_rows * 4
        rationale["working_set"] = (
            f"index working set is {num_diags * 4} B (offsets only) vs "
            f"~{ell_index_bytes} B of ELL column indices: the freed L1/L2 "
            "capacity re-hits matrix values and spilled vectors instead"
        )

    occ = compute_occupancy(hw, storage.shared_bytes_used, threads)

    fused = num_rows <= FUSED_ROW_LIMIT
    rationale["kernel"] = (
        "fused single-kernel solve: launch overhead and inter-kernel "
        "traffic dominate at this size"
        if fused
        else "component kernels: the system is large enough that kernel "
        "launch overhead is negligible and resources are better spent on "
        "per-operation tuning"
    )

    return TuningDecision(
        fmt=fmt,
        threads_per_block=threads,
        rows_per_thread=rows_per_thread,
        storage=storage,
        occupancy=occ,
        fused_kernel=fused,
        rationale=rationale,
        solver_variant=solver_variant,
    )


def decision_for_config(
    hw: GpuSpec,
    config,
    num_rows: int,
    *,
    provenance: str = "policy",
) -> TuningDecision:
    """Materialise a searched configuration into a :class:`TuningDecision`.

    ``config`` is any object with the autotuning gym's configuration
    attributes (:class:`repro.tune.TuneConfig`, duck-typed so this layer
    stays independent of :mod:`repro.tune`): ``solver``, ``fmt``,
    ``value_bytes``, ``gmres_restart``, ``target_blocks_per_cu`` and
    ``compaction_threshold``.  The kernel geometry that is *not* searched
    (thread sizing, fused-vs-component path) follows the same rules as
    :func:`tune_batched_solver`; the searched knobs — format, solver
    variant, precision, shared-memory residency — come from the config.
    """
    check_positive(num_rows, "num_rows")
    threads, rows_per_thread, thread_why = _thread_plan(hw, num_rows)
    budget = hw.shared_budget_per_block(config.target_blocks_per_cu)
    storage = plan_storage(
        solver_vector_specs(config.solver, gmres_restart=config.gmres_restart),
        num_rows, budget, value_bytes=config.value_bytes,
    )
    occ = compute_occupancy(hw, storage.shared_bytes_used, threads)
    fused = num_rows <= FUSED_ROW_LIMIT
    rationale = {
        "policy": (
            f"searched configuration ({provenance}): solver="
            f"{config.solver}, format={config.fmt}, precision="
            f"{config.precision}, {config.target_blocks_per_cu} target "
            "block(s)/CU — selected by the autotuning gym over the GPU "
            "cost model, not by the hand rules"
        ),
        "threads": thread_why,
        "shared": (
            f"{storage.num_shared}/{storage.num_vectors} vectors in "
            f"{storage.shared_bytes_used} B of shared memory (searched "
            f"residency target {config.target_blocks_per_cu} block(s)/CU, "
            f"budget {budget} B)"
        ),
        "kernel": (
            "fused single-kernel solve" if fused else "component kernels"
        ),
    }
    if config.compaction_threshold:
        rationale["compaction"] = (
            f"re-compact the active batch below {config.compaction_threshold:.0%} "
            "active systems"
        )
    return TuningDecision(
        fmt=config.fmt,
        threads_per_block=threads,
        rows_per_thread=rows_per_thread,
        storage=storage,
        occupancy=occ,
        fused_kernel=fused,
        rationale=rationale,
        solver_variant=config.solver,
        backend=getattr(config, "backend", "numpy"),
    )


def tune_for_matrix(
    hw: GpuSpec,
    matrix,
    *,
    solver: str = "bicgstab",
    gmres_restart: int = 30,
    value_bytes: int | None = None,
    num_batch: int | None = None,
    policy=None,
    scenario: str = "xgc",
) -> TuningDecision:
    """Tune directly from a batch matrix (inspects its pattern).

    Knowing the full pattern, the exact padding fractions and the diagonal
    structure drive the format choice — the XGC pattern (9 constant
    diagonals, ~4% fringe padding) selects the gather-free DIA format
    here, where the dimension-only entry point would still pick ELL.
    ``value_bytes`` defaults to the matrix's own value size, so an fp32
    batch gets the fp32 shared-memory plan (twice the vector capacity)
    without any extra argument.  ``num_batch`` defaults to the matrix's
    own batch size, enabling the classic-vs-pipelined variant choice;
    pass ``0`` to suppress it.

    ``policy`` is an optional searched-policy lookup (a
    :class:`repro.tune.TuningPolicy`, anything with its ``lookup``
    signature, or a path to a ``best_configs.json``): when it holds an
    entry for ``(hw.name, num_rows, num_batch, scenario)``, that searched
    configuration is materialised via :func:`decision_for_config` and the
    hand rules below are bypassed.  With no policy (the default) or on a
    lookup miss, the decision is **bit-identical** to the policy-free
    path.
    """
    import numpy as np

    from ..core.convert import to_format

    if value_bytes is None:
        value_bytes = int(np.dtype(getattr(matrix, "dtype", np.float64)).itemsize)

    csr = to_format(matrix, "csr")
    nnz_row = csr.nnz_per_row()
    if nnz_row.size == 0 or nnz_row.max() == 0:
        raise ValueError("cannot tune for an empty sparsity pattern")
    if num_batch is None:
        num_batch = int(getattr(csr, "num_batch", 0))

    if policy is not None:
        if isinstance(policy, (str, bytes)) or hasattr(policy, "read_text"):
            from ..tune.policy import TuningPolicy

            policy = TuningPolicy.load(policy)
        hit = policy.lookup(hw.name, csr.num_rows, num_batch, scenario)
        if hit is not None:
            return decision_for_config(
                hw, hit, csr.num_rows,
                provenance=f"policy entry for {hw.name}, n={csr.num_rows}, "
                           f"batch={num_batch}, scenario={scenario!r}",
            )

    lo = max(int(nnz_row.min()), 1)
    hi = int(nnz_row.max())
    padding = 1.0 - float(nnz_row.mean()) / hi

    rows = np.repeat(np.arange(csr.num_rows, dtype=np.int64), nnz_row)
    offsets = np.unique(csr.col_idxs.astype(np.int64) - rows)
    num_diags = int(offsets.size)
    dia_padding = 1.0 - csr.nnz_per_system / (num_diags * csr.num_rows)
    return tune_batched_solver(
        hw, csr.num_rows, lo, hi, solver=solver, gmres_restart=gmres_restart,
        value_bytes=value_bytes, padding_fraction=padding,
        num_diags=num_diags, dia_padding_fraction=dia_padding,
        num_batch=num_batch or None,
    )
