"""Simulated multi-rank (MPI-style) and multi-GPU batch distribution."""

from .multi_gpu import (
    SUMMIT_NODE,
    GpuNode,
    NodeSolveEstimate,
    estimate_node_solve,
    gpu_scaling_study,
)
from .partition import Partition, imbalance, partition_batch
from .runner import DistributedRun, RankResult, run_distributed

__all__ = [
    "Partition",
    "partition_batch",
    "imbalance",
    "DistributedRun",
    "RankResult",
    "run_distributed",
    "GpuNode",
    "SUMMIT_NODE",
    "NodeSolveEstimate",
    "estimate_node_solve",
    "gpu_scaling_study",
]
