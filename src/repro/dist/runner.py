"""Simulated multi-rank execution of the proxy app.

Executes a decomposed batch rank by rank and reports the modelled parallel
timing: per-rank solve-time estimates from the GPU model, the
synchronisation point at the end of the collision step, and the resulting
parallel efficiency.

Ranks own independent problems, so their *numerics* never depend on how
they are executed.  By default small runs execute sequentially in-process;
large runs (``num_batch >= parallel_threshold``) are fanned out over a
process pool — the host-side analogue of one MPI rank per GPU — which
shortens real wall-clock for benchmark sweeps without touching the
modelled timing (still computed in the parent from each rank's iteration
counts).  Factories that cannot cross a process boundary (e.g. closures)
fall back to the sequential path automatically.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import os
import pickle
from dataclasses import dataclass, field

import numpy as np

from ..core.faults import HEALTH_DTYPE, SolverHealth, health_counts
from ..gpu.hardware import GpuSpec, V100
from ..gpu.timing import estimate_iterative_solve
from ..xgc.picard import PicardStepper
from .partition import Partition, partition_batch

__all__ = ["RankResult", "DistributedRun", "run_distributed",
           "shared_executor", "shutdown_executor"]


#: Lazily-created process pool shared across :func:`run_distributed` calls.
#: Spawning a pool costs tens of milliseconds of fork/spawn overhead *per
#: call* — a benchmark sweep of hundreds of distributed steps used to pay
#: it every time.  The pool is keyed by its worker count: asking for a
#: different size replaces it.
_POOL: concurrent.futures.ProcessPoolExecutor | None = None
_POOL_WORKERS: int = 0


def shared_executor(max_workers: int) -> concurrent.futures.ProcessPoolExecutor:
    """The shared process pool, (re)created on first use or size change.

    The pool persists across calls and is torn down at interpreter exit
    (or explicitly via :func:`shutdown_executor`).  A pool that broke —
    e.g. a worker died — is replaced on the next request.
    """
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS != max_workers:
        shutdown_executor()
    if _POOL is None:
        _POOL = concurrent.futures.ProcessPoolExecutor(max_workers=max_workers)
        _POOL_WORKERS = max_workers
    return _POOL


def shutdown_executor() -> None:
    """Tear down the shared pool (idempotent; safe without one)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_executor)


@dataclass
class RankResult:
    """One rank's outcome.

    Attributes
    ----------
    rank:
        Rank id.
    f_new:
        Updated distributions of the rank's systems.
    linear_iterations:
        ``(picard_iters, rank_batch)`` iteration counts.
    modelled_time_s:
        Modelled wall-clock of the rank's solves on the target GPU.
    health:
        Per-system worst :class:`~repro.core.faults.SolverHealth` the
        rank's Picard loop observed (``np.int8`` codes), or ``None`` for
        steppers that do not report health.
    """

    rank: int
    f_new: np.ndarray
    linear_iterations: np.ndarray
    modelled_time_s: float
    health: np.ndarray | None = None


@dataclass
class DistributedRun:
    """Results and timing summary of a simulated distributed step."""

    partition: Partition
    rank_results: list[RankResult] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        """Parallel time: slowest rank (synchronisation at step end)."""
        return max(r.modelled_time_s for r in self.rank_results)

    @property
    def total_work_s(self) -> float:
        """Aggregate rank time (serial-equivalent work)."""
        return sum(r.modelled_time_s for r in self.rank_results)

    @property
    def parallel_efficiency(self) -> float:
        """``total_work / (ranks * makespan)`` — 1.0 is perfect balance."""
        n = len(self.rank_results)
        return self.total_work_s / (n * self.makespan_s) if n else 0.0

    def gather_f(self) -> np.ndarray:
        """Updated distributions reassembled into batch order."""
        return self.partition.gather([r.f_new for r in self.rank_results])

    def gather_health(self) -> np.ndarray:
        """Per-system health reassembled into batch order (CONVERGED for
        ranks that reported none)."""
        slices = []
        for r in self.rank_results:
            if r.health is not None:
                slices.append(np.asarray(r.health, dtype=HEALTH_DTYPE))
            else:
                slices.append(
                    np.full(r.f_new.shape[0], SolverHealth.CONVERGED, HEALTH_DTYPE)
                )
        return self.partition.gather(slices)

    def health_counts(self, *, unreported: str = "converged") -> dict:
        """Worst-health histogram across all ranks (the MPI-reduce analogue:
        each rank reduces locally, the counts merge here).

        Runs routinely mix ranks whose stepper tracks health with ranks
        whose stepper does not (``health=None``); ``unreported`` says how
        the silent ranks' systems enter the histogram:

        * ``"converged"`` (default) — counted as CONVERGED, the historical
          behaviour (a non-reporting stepper raises on failure, so its
          surviving systems did converge);
        * ``"skip"`` — left out of the histogram entirely;
        * ``"count"`` — tallied under an explicit ``"unreported"`` key.
        """
        if unreported == "converged":
            return health_counts(self.gather_health())
        if unreported not in ("skip", "count"):
            raise ValueError(
                f"unreported must be 'converged', 'skip' or 'count', "
                f"got {unreported!r}"
            )
        reported = [
            np.asarray(r.health, dtype=HEALTH_DTYPE)
            for r in self.rank_results
            if r.health is not None
        ]
        counts = (
            health_counts(np.concatenate(reported)) if reported else {}
        )
        missing = sum(
            r.f_new.shape[0]
            for r in self.rank_results
            if r.health is None
        )
        if unreported == "count" and missing:
            counts["unreported"] = missing
        return counts

    @property
    def worst_health(self) -> int:
        """Single worst health code across the whole run."""
        gathered = self.gather_health()
        if gathered.size == 0:
            return int(SolverHealth.CONVERGED)
        return int(gathered.max())


def _rank_task(stepper_factory, idx, f_slice, dt):
    """One rank's work, shippable to a worker process.

    Returns the raw arrays (plus the matrix format for the timing model)
    rather than the full :class:`~repro.xgc.picard.PicardStepResult` so the
    payload crossing the process boundary stays small.
    """
    stepper: PicardStepper = stepper_factory(idx)
    result = stepper.step(f_slice, dt)
    return (
        result.f_new,
        result.linear_iterations,
        stepper.options.matrix_format,
        result.health,
    )


def _run_ranks_parallel(stepper_factory, jobs, f0, dt, max_workers,
                        executor=None):
    """Execute ``(rank, idx)`` jobs on a process pool; returns {rank: output}.

    Uses ``executor`` when given, else the module's shared pool (created
    once, reused across calls).  Raises whatever pickling/pool error the
    executor produced so the caller can fall back to sequential execution;
    a broken shared pool is discarded so the next call gets a fresh one.
    """
    workers = max_workers or min(len(jobs), os.cpu_count() or 1)
    pool = executor if executor is not None else shared_executor(workers)
    try:
        futures = {
            rank: pool.submit(_rank_task, stepper_factory, idx, f0[idx], dt)
            for rank, idx in jobs
        }
        return {rank: fut.result() for rank, fut in futures.items()}
    except concurrent.futures.BrokenExecutor:
        if executor is None:
            shutdown_executor()
        raise


def run_distributed(
    stepper_factory,
    f0: np.ndarray,
    dt: float,
    num_ranks: int,
    *,
    scheme: str = "block",
    gpu: GpuSpec = V100,
    num_rows: int | None = None,
    nnz: int = 8554,
    stored_nnz: int | None = None,
    parallel: bool | None = None,
    parallel_threshold: int = 64,
    max_workers: int | None = None,
    executor: concurrent.futures.Executor | None = None,
) -> DistributedRun:
    """Run one collision step decomposed over simulated ranks.

    Parameters
    ----------
    stepper_factory:
        Callable ``(rank_masses) -> PicardStepper`` building the per-rank
        stepper (each rank owns a slice of the species-mass array).  Must be
        picklable (a module-level function or functools.partial of one) for
        the parallel path; unpicklable factories silently run sequentially.
    f0:
        Full batch of initial distributions, shape ``(num_batch, n)``.
    dt:
        Time-step size.
    num_ranks:
        Ranks to decompose over.
    scheme:
        Partitioning scheme (see :func:`repro.dist.partition.partition_batch`).
    gpu:
        GPU model used for the per-rank timing estimate.
    parallel:
        ``True`` forces the process-pool path, ``False`` forces sequential,
        ``None`` (default) picks the pool only when ``num_ranks > 1`` and
        the batch reaches ``parallel_threshold`` (process start-up costs
        more than a small batch's solve).
    parallel_threshold:
        Minimum ``num_batch`` for the automatic parallel path.
    max_workers:
        Process-pool size cap (default: one worker per non-empty rank, up
        to the CPU count).
    executor:
        Externally-owned executor to run rank tasks on (its lifecycle is
        the caller's).  Default ``None`` uses the module's shared pool —
        created once and reused across calls, since pool start-up costs
        more than a small batch's entire solve.
    """
    num_batch = f0.shape[0]
    n = f0.shape[1] if num_rows is None else num_rows
    part = partition_batch(num_batch, num_ranks, scheme=scheme)
    run = DistributedRun(partition=part)

    tasks = [(rank, part.indices_of(rank)) for rank in range(num_ranks)]
    jobs = [(rank, idx) for rank, idx in tasks if idx.size > 0]

    if parallel is None:
        use_parallel = len(jobs) > 1 and num_batch >= parallel_threshold
    else:
        use_parallel = bool(parallel) and len(jobs) > 1

    outputs: dict[int, tuple] = {}
    if use_parallel:
        try:
            outputs = _run_ranks_parallel(
                stepper_factory, jobs, f0, dt, max_workers, executor
            )
        except (pickle.PicklingError, AttributeError, TypeError,
                concurrent.futures.BrokenExecutor):
            outputs = {}  # unpicklable factory or broken pool: run in-process

    for rank, idx in tasks:
        if idx.size == 0:
            run.rank_results.append(
                RankResult(rank, f0[:0], np.zeros((0, 0)), 0.0,
                           np.zeros(0, dtype=HEALTH_DTYPE))
            )
            continue
        if rank in outputs:
            f_new, iters_arr, matrix_format, health = outputs[rank]
        else:
            f_new, iters_arr, matrix_format, health = _rank_task(
                stepper_factory, idx, f0[idx], dt
            )
        t = 0.0
        for iters in iters_arr:
            est = estimate_iterative_solve(
                gpu, matrix_format, n, nnz, iters,
                stored_nnz=stored_nnz,
            )
            t += est.total_time_s
        run.rank_results.append(RankResult(rank, f_new, iters_arr, t, health))
    return run
