"""Simulated multi-rank execution of the proxy app.

Executes a decomposed batch rank by rank (sequentially, in-process — the
numerics are identical to an MPI run because the problems are independent)
and reports the modelled parallel timing: per-rank solve-time estimates
from the GPU model, the synchronisation point at the end of the collision
step, and the resulting parallel efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..gpu.hardware import GpuSpec, V100
from ..gpu.timing import estimate_iterative_solve
from ..xgc.picard import PicardStepper
from .partition import Partition, partition_batch

__all__ = ["RankResult", "DistributedRun", "run_distributed"]


@dataclass
class RankResult:
    """One rank's outcome.

    Attributes
    ----------
    rank:
        Rank id.
    f_new:
        Updated distributions of the rank's systems.
    linear_iterations:
        ``(picard_iters, rank_batch)`` iteration counts.
    modelled_time_s:
        Modelled wall-clock of the rank's solves on the target GPU.
    """

    rank: int
    f_new: np.ndarray
    linear_iterations: np.ndarray
    modelled_time_s: float


@dataclass
class DistributedRun:
    """Results and timing summary of a simulated distributed step."""

    partition: Partition
    rank_results: list[RankResult] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        """Parallel time: slowest rank (synchronisation at step end)."""
        return max(r.modelled_time_s for r in self.rank_results)

    @property
    def total_work_s(self) -> float:
        """Aggregate rank time (serial-equivalent work)."""
        return sum(r.modelled_time_s for r in self.rank_results)

    @property
    def parallel_efficiency(self) -> float:
        """``total_work / (ranks * makespan)`` — 1.0 is perfect balance."""
        n = len(self.rank_results)
        return self.total_work_s / (n * self.makespan_s) if n else 0.0

    def gather_f(self) -> np.ndarray:
        """Updated distributions reassembled into batch order."""
        return self.partition.gather([r.f_new for r in self.rank_results])


def run_distributed(
    stepper_factory,
    f0: np.ndarray,
    dt: float,
    num_ranks: int,
    *,
    scheme: str = "block",
    gpu: GpuSpec = V100,
    num_rows: int | None = None,
    nnz: int = 8554,
    stored_nnz: int | None = None,
) -> DistributedRun:
    """Run one collision step decomposed over simulated ranks.

    Parameters
    ----------
    stepper_factory:
        Callable ``(rank_masses) -> PicardStepper`` building the per-rank
        stepper (each rank owns a slice of the species-mass array).
    f0:
        Full batch of initial distributions, shape ``(num_batch, n)``.
    dt:
        Time-step size.
    num_ranks:
        Ranks to decompose over.
    scheme:
        Partitioning scheme (see :func:`repro.dist.partition.partition_batch`).
    gpu:
        GPU model used for the per-rank timing estimate.
    """
    num_batch = f0.shape[0]
    n = f0.shape[1] if num_rows is None else num_rows
    part = partition_batch(num_batch, num_ranks, scheme=scheme)
    run = DistributedRun(partition=part)

    for rank in range(num_ranks):
        idx = part.indices_of(rank)
        if idx.size == 0:
            run.rank_results.append(
                RankResult(rank, f0[:0], np.zeros((0, 0)), 0.0)
            )
            continue
        stepper: PicardStepper = stepper_factory(idx)
        result = stepper.step(f0[idx], dt)
        t = 0.0
        for iters in result.linear_iterations:
            est = estimate_iterative_solve(
                gpu, stepper.options.matrix_format, n, nnz, iters,
                stored_nnz=stored_nnz,
            )
            t += est.total_time_s
        run.rank_results.append(
            RankResult(rank, result.f_new, result.linear_iterations, t)
        )
    return run
