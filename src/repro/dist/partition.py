"""Batch partitioning across (simulated) MPI ranks.

The proxy app "utilizes MPI for multiple CPU nodes" and is embarrassingly
parallel over mesh nodes: each rank owns a contiguous slice of the batch
and runs its own Picard loop.  This module provides the decomposition
helpers — block and cyclic partitions plus imbalance diagnostics — without
requiring an MPI runtime (mpi4py is not a dependency); the simulated runner
in :mod:`repro.dist.runner` executes the decomposed batches rank by rank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils.validation import check_in, check_positive

__all__ = ["Partition", "partition_batch", "imbalance"]


@dataclass(frozen=True)
class Partition:
    """Assignment of batch entries to ranks.

    Attributes
    ----------
    num_ranks:
        Ranks in the decomposition.
    assignments:
        ``(num_batch,)`` int array: owning rank of each entry.
    scheme:
        ``"block"`` or ``"cyclic"``.
    """

    num_ranks: int
    assignments: np.ndarray
    scheme: str

    def indices_of(self, rank: int) -> np.ndarray:
        """Batch indices owned by ``rank`` (in batch order)."""
        if not 0 <= rank < self.num_ranks:
            raise IndexError(f"rank {rank} outside [0, {self.num_ranks})")
        return np.flatnonzero(self.assignments == rank)

    def counts(self) -> np.ndarray:
        """Entries per rank."""
        return np.bincount(self.assignments, minlength=self.num_ranks)

    def scatter(self, batch_array: np.ndarray) -> list[np.ndarray]:
        """Split a ``(num_batch, ...)`` array into per-rank arrays."""
        return [batch_array[self.indices_of(r)] for r in range(self.num_ranks)]

    def gather(self, per_rank: list[np.ndarray]) -> np.ndarray:
        """Reassemble per-rank arrays into batch order (inverse of scatter)."""
        if len(per_rank) != self.num_ranks:
            raise ValueError(
                f"expected {self.num_ranks} rank arrays, got {len(per_rank)}"
            )
        total = self.assignments.shape[0]
        first = per_rank[0]
        out = np.empty((total,) + first.shape[1:], dtype=first.dtype)
        for r, chunk in enumerate(per_rank):
            idx = self.indices_of(r)
            if chunk.shape[0] != idx.shape[0]:
                raise ValueError(
                    f"rank {r} array has {chunk.shape[0]} entries, "
                    f"partition expects {idx.shape[0]}"
                )
            out[idx] = chunk
        return out


def partition_batch(
    num_batch: int, num_ranks: int, *, scheme: str = "block"
) -> Partition:
    """Partition ``num_batch`` entries over ``num_ranks`` ranks.

    ``"block"`` gives each rank a contiguous slice (sizes differing by at
    most one); ``"cyclic"`` deals entries round-robin — useful when batch
    order correlates with difficulty (e.g. node-sorted profiles) and block
    slices would be imbalanced in *work* despite equal counts.
    """
    check_positive(num_batch, "num_batch")
    check_positive(num_ranks, "num_ranks")
    check_in(scheme, ("block", "cyclic"), "scheme")
    idx = np.arange(num_batch)
    if scheme == "cyclic":
        owners = idx % num_ranks
    else:
        base, extra = divmod(num_batch, num_ranks)
        sizes = np.full(num_ranks, base)
        sizes[:extra] += 1
        owners = np.repeat(np.arange(num_ranks), sizes)
    return Partition(num_ranks=num_ranks, assignments=owners, scheme=scheme)


def imbalance(partition: Partition, work_per_entry: np.ndarray | None = None) -> float:
    """Load imbalance ``max(rank work) / mean(rank work)`` (1.0 = perfect).

    ``work_per_entry`` weights entries by cost (e.g. measured solver
    iterations); entry counts are used when omitted.
    """
    if work_per_entry is None:
        loads = partition.counts().astype(float)
    else:
        work = np.asarray(work_per_entry, dtype=float)
        if work.shape[0] != partition.assignments.shape[0]:
            raise ValueError("work_per_entry length must match the batch size")
        loads = np.zeros(partition.num_ranks)
        np.add.at(loads, partition.assignments, work)
    mean = loads.mean()
    return float(loads.max() / mean) if mean > 0 else 1.0
