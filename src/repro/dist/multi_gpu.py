"""Multi-GPU node model: batched solves across the GPUs of one node.

The paper's V100 numbers come from Summit, whose nodes carry **six** V100s
(reproducibility appendix); production XGC distributes its mesh-node batch
over all of them.  Because the systems are independent, multi-GPU execution
is one more level of the same decomposition: split the batch, solve each
shard on its GPU, synchronise at the end of the collision step.

The model composes the single-GPU estimator over the shards and adds one
inter-GPU synchronisation (the Picard loop's reduction of convergence
flags/moments), exposing where multi-GPU scaling saturates: once each
shard drops below its GPU's slot count, extra GPUs stop helping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..gpu.hardware import GpuSpec, V100
from ..gpu.timing import estimate_iterative_solve
from ..utils.validation import check_positive
from .partition import partition_batch

__all__ = ["GpuNode", "SUMMIT_NODE", "NodeSolveEstimate", "estimate_node_solve",
           "gpu_scaling_study"]


@dataclass(frozen=True)
class GpuNode:
    """One multi-GPU compute node.

    Attributes
    ----------
    gpu:
        GPU model populating the node.
    gpus_per_node:
        Device count.
    sync_overhead_us:
        Cost of the end-of-solve synchronisation across the node's GPUs
        (NVLink/XGMI reduction of convergence metadata).
    """

    gpu: GpuSpec
    gpus_per_node: int
    sync_overhead_us: float = 15.0

    def __post_init__(self) -> None:
        check_positive(self.gpus_per_node, "gpus_per_node")


#: A Summit node: six NVLink-connected V100s (reproducibility appendix).
SUMMIT_NODE = GpuNode(gpu=V100, gpus_per_node=6)


@dataclass(frozen=True)
class NodeSolveEstimate:
    """A modelled node-level batched solve.

    Attributes
    ----------
    total_time_s:
        Slowest GPU's shard plus the synchronisation.
    per_gpu_times_s:
        Each GPU's shard time.
    num_gpus_used:
        GPUs that received at least one system.
    parallel_efficiency:
        Single-GPU time divided by (GPUs used x node time).
    """

    total_time_s: float
    per_gpu_times_s: np.ndarray
    num_gpus_used: int
    parallel_efficiency: float


def estimate_node_solve(
    node: GpuNode,
    fmt: str,
    num_rows: int,
    nnz: int,
    iterations: np.ndarray,
    *,
    stored_nnz: int | None = None,
    num_gpus: int | None = None,
) -> NodeSolveEstimate:
    """Model one batched solve spread over a node's GPUs.

    The batch is split in contiguous blocks: the proxy app interleaves the
    species node by node, so block shards stay ion/electron-mixed on every
    GPU (a cyclic split with an even GPU count would put all electrons on
    half the devices — the parity trap the partition tests document).
    """
    iterations = np.asarray(iterations)
    gpus = node.gpus_per_node if num_gpus is None else int(num_gpus)
    if not 1 <= gpus <= node.gpus_per_node:
        raise ValueError(
            f"num_gpus must be in [1, {node.gpus_per_node}], got {gpus}"
        )
    part = partition_batch(iterations.size, gpus, scheme="block")

    times = np.zeros(gpus)
    used = 0
    for g in range(gpus):
        idx = part.indices_of(g)
        if idx.size == 0:
            continue
        used += 1
        times[g] = estimate_iterative_solve(
            node.gpu, fmt, num_rows, nnz, iterations[idx],
            stored_nnz=stored_nnz,
        ).total_time_s
    total = float(times.max()) + node.sync_overhead_us * 1e-6

    single = estimate_iterative_solve(
        node.gpu, fmt, num_rows, nnz, iterations, stored_nnz=stored_nnz
    ).total_time_s
    efficiency = single / (used * total) if used else 0.0
    return NodeSolveEstimate(
        total_time_s=total,
        per_gpu_times_s=times,
        num_gpus_used=used,
        parallel_efficiency=float(min(efficiency, 1.0)),
    )


def gpu_scaling_study(
    node: GpuNode,
    fmt: str,
    num_rows: int,
    nnz: int,
    iterations: np.ndarray,
    *,
    stored_nnz: int | None = None,
) -> list[NodeSolveEstimate]:
    """Node solve estimates for 1..gpus_per_node devices (scaling curve)."""
    return [
        estimate_node_solve(
            node, fmt, num_rows, nnz, iterations,
            stored_nnz=stored_nnz, num_gpus=g,
        )
        for g in range(1, node.gpus_per_node + 1)
    ]
