"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``info``
    Print the library inventory and the hardware catalog.
``demo``
    Run a small end-to-end demonstration: assemble the XGC batch, solve it
    with batched BiCGSTAB, and project the solve onto the paper's GPUs.
``picard``
    Run the proxy app's Picard loop and print the Table-III style report.
``tune``
    Show the automatic solver configuration for the XGC matrices on every
    modelled GPU.  ``--search`` runs the autotuning gym first and applies
    the searched policy (``--policy`` applies a saved one); ``--out`` /
    ``--trajectory`` write the ``best_configs.json`` and JSONL artifacts.
``reproduce``
    Regenerate every paper artefact (figures and tables) and write them
    to a directory (default ``./results``).
``serve``
    Run the solver service against seeded synthetic traffic (Poisson or
    bursty arrivals) on the deterministic virtual clock and print the
    throughput/latency/QoS report.
"""

from __future__ import annotations

import argparse
import sys



def _cmd_info(_args) -> int:
    import repro
    from repro.gpu import GPUS, SKYLAKE_NODE

    print(f"repro {repro.__version__} — batched sparse iterative solvers "
          "for the XGC collision operator (IPDPS 2022 reproduction)")
    print("\nsubpackages:")
    for name, mod in (
        ("core", repro.core), ("xgc", repro.xgc), ("gpu", repro.gpu),
        ("dist", repro.dist), ("utils", repro.utils),
    ):
        doc = (mod.__doc__ or "").strip().splitlines()[0]
        print(f"  repro.{name:<6} {doc}")
    print("\nmodelled hardware:")
    for hw in GPUS:
        print(f"  {hw.name:<7} {hw.peak_fp64_tflops} TF FP64, "
              f"{hw.mem_bw_gbs:.0f} GB/s, {hw.num_cus} CUs, "
              f"warp {hw.warp_size}, {hw.scheduling} dispatch")
    cpu = SKYLAKE_NODE
    print(f"  {cpu.name:<7} {cpu.num_sockets}x{cpu.cores_per_socket} cores, "
          f"{cpu.cores_used} used for dgbsv")
    return 0


def _cmd_demo(args) -> int:
    import numpy as np

    from repro.core import AbsoluteResidual, BatchBicgstab
    from repro.gpu import GPUS, SKYLAKE_NODE, estimate_cpu_dgbsv, \
        estimate_iterative_solve
    from repro.xgc import CollisionProxyApp, PicardOptions, ProxyAppConfig

    app = CollisionProxyApp(ProxyAppConfig(
        num_mesh_nodes=args.nodes,
        picard=PicardOptions(matrix_format=args.format),
    ))
    matrix, rhs = app.build_matrices()
    print(f"assembled {matrix.num_batch} collision systems "
          f"({matrix.num_rows} rows, 9-point stencil, "
          f"{args.format.upper()} format)")

    solver = BatchBicgstab(preconditioner="jacobi",
                           criterion=AbsoluteResidual(1e-10), max_iter=500)
    res = solver.solve(matrix, rhs)
    print(f"batched BiCGSTAB: converged={res.all_converged}, "
          f"iterations={res.iterations.tolist()}")

    nb = args.batch
    its = np.tile(res.iterations, nb // res.iterations.size + 1)[:nb]
    stored = getattr(matrix, "stored_per_system", None)
    print(f"\nmodelled solve times at batch size {nb} "
          f"({args.format.upper()} format):")
    for hw in GPUS:
        est = estimate_iterative_solve(
            hw, args.format, matrix.num_rows, app.stencil.nnz, its,
            stored_nnz=stored,
        )
        print(f"  {hw.name:<7} {est.total_time_s * 1e3:9.3f} ms")
    cpu = estimate_cpu_dgbsv(SKYLAKE_NODE, matrix.num_rows, 33, 33, nb)
    print(f"  {'Skylake':<7} {cpu.total_time_s * 1e3:9.3f} ms (dgbsv)")
    return 0


def _cmd_picard(args) -> int:
    import sys

    from repro.core import BackendUnavailableError
    from repro.xgc import CollisionProxyApp, PicardOptions, ProxyAppConfig

    try:
        app = CollisionProxyApp(ProxyAppConfig(
            num_mesh_nodes=args.nodes,
            picard=PicardOptions(
                matrix_format=args.format,
                solver=args.solver,
                backend=getattr(args, "backend", "numpy"),
            ),
        ))
    except BackendUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    result = app.run(args.steps)
    by = result.linear_iterations_by_species(app.config)
    print("linear iterations per Picard iteration (batch mean):")
    for name, table in by.items():
        for step, row in enumerate(table):
            print(f"  {name:<9} step {step}: "
                  + " ".join(f"{v:5.1f}" for v in row))
    worst = result.step_results[-1].conservation.worst()
    print("conservation drifts: "
          + ", ".join(f"{k}={v:.2e}" for k, v in worst.items()))
    return 0


def _cmd_tune(args) -> int:
    from repro.gpu import GPUS, tune_for_matrix

    from repro.xgc import CollisionProxyApp, ProxyAppConfig

    app = CollisionProxyApp(ProxyAppConfig(num_mesh_nodes=1))
    matrix, _ = app.build_matrices()

    policy = None
    if getattr(args, "search", False):
        # Always distill the report matrix's own cell so the searched
        # decisions below actually come from the policy.
        policy = _run_search(args, extra_batches=(matrix.num_batch,))
    elif getattr(args, "policy", None):
        from repro.tune import TuningPolicy

        policy = TuningPolicy.load(args.policy)
        print(f"loaded policy with {len(policy)} cell(s) from {args.policy}\n")
    for hw in GPUS:
        d = tune_for_matrix(hw, matrix, policy=policy)
        print(f"{hw.name}: format={d.fmt}, threads={d.threads_per_block}, "
              f"shared {d.storage.num_shared}/{d.storage.num_vectors} "
              f"vectors, {'fused' if d.fused_kernel else 'component'} kernel")
        for key, why in d.rationale.items():
            print(f"    {key}: {why}")
    return 0


def _run_search(args, extra_batches=()):
    """``tune --search``: distill a policy over the hardware grid."""
    from repro.gpu import GPUS
    from repro.tune import (
        HillClimbAgent,
        TrajectoryLogger,
        distill_policy,
        xgc_scenario,
    )

    scenario = xgc_scenario()
    batches = tuple(int(b) for b in args.batches.split(","))
    batches += tuple(b for b in extra_batches if b not in batches)
    logger = TrajectoryLogger()
    policy = distill_policy(
        GPUS, scenario, batches,
        agent_factory=lambda budget, seed: HillClimbAgent(
            budget=budget, seed=seed, temperature=0.05),
        budget=args.budget, seed=args.seed, logger=logger,
    )
    print(f"searched {len(policy)} cell(s) "
          f"(budget {args.budget}/cell, seed {args.seed}):")
    for key in sorted(policy.entries):
        e = policy.entries[key]
        gain = e.baseline_cost / e.cost if e.cost > 0 else float("inf")
        c = e.config
        print(f"  {key:<24} {c.solver}/{c.fmt}/{c.precision}"
              f"@{c.target_blocks_per_cu}bpc  "
              f"{e.cost * 1e3:8.3f} ms  ({gain:5.2f}x vs hand rules)")
    if args.out:
        policy.save(args.out)
        print(f"wrote policy to {args.out}")
    if args.trajectory:
        logger.save(args.trajectory)
        print(f"wrote {len(logger.records)} trajectory records to "
              f"{args.trajectory}")
    print()
    return policy


def _cmd_serve(args) -> int:
    from repro.service import (
        CoalescePolicy,
        QosPolicy,
        TenantSpec,
        TrafficPattern,
        WorkloadSpec,
        serve_traffic,
    )

    pattern = TrafficPattern(
        kind=args.traffic,
        rate_hz=args.rate,
        burst_rate_hz=4 * args.rate,
        duration_s=args.duration,
        seed=args.seed,
    )
    spec = WorkloadSpec(
        num_rows=args.num_rows,
        systems_choices=(1, 2),
        tenants=(("interactive", 3.0), ("batch", 1.0)),
    )
    qos = QosPolicy(
        capacity=args.capacity,
        tenants=(
            TenantSpec("interactive", weight=3.0, deadline_s=args.deadline),
            TenantSpec("batch", weight=1.0, deadline_s=5 * args.deadline),
        ),
    )
    coalesce = CoalescePolicy(
        max_batch=args.max_batch, max_wait_s=args.max_wait, naive=args.naive,
    )
    run = serve_traffic(pattern, spec, qos=qos, coalesce=coalesce,
                        num_ranks=args.ranks)
    r = run.report
    mode = "naive per-request" if args.naive else \
        f"coalesced (max_batch={args.max_batch}, max_wait={args.max_wait * 1e3:g} ms)"
    lats = sorted(r.latencies)
    p = (lambda q: lats[min(len(lats) - 1, int(q * len(lats)))] * 1e3) \
        if lats else (lambda q: 0.0)
    print(f"{args.traffic} traffic, {args.rate:g}/s for "
          f"{args.duration * 1e3:g} ms (seed {args.seed}), {mode}:")
    print(f"  submitted {r.submitted}, completed {r.completed} "
          f"({r.completed_systems} systems), degraded {r.degraded}, "
          f"shed {r.shed}")
    print(f"  batches {r.batches} (mean size {r.mean_batch_size:.1f}), "
          f"compactions {r.compaction_events}, flushes {dict(r.flush_reasons)}")
    print(f"  throughput {r.throughput:,.0f} systems/s over "
          f"{r.makespan_s * 1e3:.2f} ms makespan "
          f"(device busy {r.device_busy_s * 1e3:.2f} ms)")
    print(f"  latency p50/p95/p99: {p(0.50):.2f} / {p(0.95):.2f} / "
          f"{p(0.99):.2f} ms; deadline misses {r.deadline_misses} "
          f"({r.deadline_miss_rate:.2%})")
    for tenant in sorted(r.tenant_completed):
        print(f"  tenant {tenant}: {r.tenant_completed[tenant]} done, "
              f"{r.tenant_shed.get(tenant, 0)} shed, health "
              f"{dict(r.tenant_health.get(tenant, {}))}")
    return 0


def _cmd_reproduce(args) -> int:
    from repro.experiments import run_all

    results = run_all(args.out, verbose=not args.quiet)
    print(f"\nwrote {len(results)} artefacts to {args.out}/")
    return 0


def main(argv=None) -> int:
    """Parse arguments and dispatch to a command."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library and hardware inventory")
    demo = sub.add_parser("demo", help="end-to-end solve + hardware projection")
    demo.add_argument("--nodes", type=int, default=4, help="mesh nodes")
    demo.add_argument("--batch", type=int, default=1920,
                      help="projected batch size")
    demo.add_argument("--format", choices=("csr", "ell", "dia"),
                      default="ell", help="batch matrix format")
    picard = sub.add_parser("picard", help="Picard loop report (Table III)")
    picard.add_argument("--nodes", type=int, default=4)
    picard.add_argument("--steps", type=int, default=1)
    picard.add_argument("--format", choices=("csr", "ell", "dia"),
                        default="ell", help="batch matrix format")
    picard.add_argument(
        "--solver",
        choices=("bicgstab", "pipelined_bicgstab", "cgs", "gmres",
                 "richardson"),
        default="bicgstab",
        help="inner batched solver (pipelined_bicgstab trades the "
             "||s|| early exit for 2 reduction rounds/iteration)",
    )
    picard.add_argument(
        "--backend",
        choices=("numpy", "jax"),
        default="numpy",
        help="array backend for assembly + inner solves "
             "(jax requires JAX installed)",
    )
    tune = sub.add_parser("tune", help="automatic solver configuration report")
    tune.add_argument("--search", action="store_true",
                      help="run the autotuning gym and apply the searched "
                           "policy instead of the hand rules alone")
    tune.add_argument("--policy", default=None, metavar="JSON",
                      help="apply a previously distilled best_configs.json")
    tune.add_argument("--budget", type=int, default=160,
                      help="cost-model evaluations per (GPU, batch) cell")
    tune.add_argument("--seed", type=int, default=0,
                      help="search RNG seed (fully deterministic per seed)")
    tune.add_argument("--batches", default="16,960,16384",
                      help="comma-separated batch sizes to distill")
    tune.add_argument("--out", default=None, metavar="JSON",
                      help="write the distilled policy (best_configs.json)")
    tune.add_argument("--trajectory", default=None, metavar="JSONL",
                      help="write per-evaluation search trajectories")
    rep = sub.add_parser("reproduce", help="regenerate all paper artefacts")
    rep.add_argument("--out", default="results", help="output directory")
    rep.add_argument("--quiet", action="store_true",
                     help="suppress per-artefact output")
    serve = sub.add_parser(
        "serve", help="solver service under seeded synthetic traffic"
    )
    serve.add_argument("--traffic", choices=("poisson", "bursty"),
                       default="poisson", help="arrival process")
    serve.add_argument("--rate", type=float, default=50_000.0,
                       help="mean arrival rate (requests/s)")
    serve.add_argument("--duration", type=float, default=10e-3,
                       help="arrival window in virtual seconds")
    serve.add_argument("--seed", type=int, default=2022,
                       help="traffic seed (same seed -> identical run)")
    serve.add_argument("--num-rows", type=int, default=128,
                       help="system size of the synthetic workload")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="coalescer flush size (systems)")
    serve.add_argument("--max-wait", type=float, default=2e-3,
                       help="coalescer max wait in virtual seconds")
    serve.add_argument("--deadline", type=float, default=10e-3,
                       help="interactive-tenant deadline (virtual seconds)")
    serve.add_argument("--capacity", type=int, default=4096,
                       help="QoS backlog bound (requests)")
    serve.add_argument("--ranks", type=int, default=1,
                       help="simulated GPUs to shard batches across")
    serve.add_argument("--naive", action="store_true",
                       help="dispatch every request alone (baseline mode)")

    args = parser.parse_args(argv)
    return {
        "info": _cmd_info,
        "demo": _cmd_demo,
        "picard": _cmd_picard,
        "tune": _cmd_tune,
        "reproduce": _cmd_reproduce,
        "serve": _cmd_serve,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
